#include "ir/expr.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <stdexcept>

#include "util/intmath.hpp"

namespace optalloc::ir {

namespace {

bool bool_op(Op op) {
  switch (op) {
    case Op::kConst:
    case Op::kIntVar:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kIte:
      return false;
    default:
      return true;
  }
}

}  // namespace

std::size_t Context::NodeKeyHash::operator()(const NodeKey& k) const {
  std::size_t h = std::hash<int>{}(static_cast<int>(k.op));
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(std::hash<std::int32_t>{}(static_cast<std::int32_t>(k.a)));
  mix(std::hash<std::int32_t>{}(static_cast<std::int32_t>(k.b)));
  mix(std::hash<std::int32_t>{}(static_cast<std::int32_t>(k.c)));
  mix(std::hash<std::int64_t>{}(k.value));
  return h;
}

NodeId Context::intern(Node n) {
  const NodeKey key{n.op, n.a, n.b, n.c, n.value};
  if (const auto it = interned_.find(key); it != interned_.end()) {
    return it->second;
  }
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(n);
  interned_.emplace(key, id);
  return id;
}

bool Context::is_bool(NodeId id) const { return bool_op(node(id).op); }

NodeId Context::int_var(std::string name, std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("int_var: empty range " + name);
  Node n;
  n.op = Op::kIntVar;
  n.value = static_cast<std::int64_t>(int_var_names_.size());
  n.range = {lo, hi};
  int_var_names_.push_back(std::move(name));
  // Variables are never interned (each call creates a fresh one).
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(n);
  return id;
}

NodeId Context::bool_var(std::string name) {
  Node n;
  n.op = Op::kBoolVar;
  n.value = static_cast<std::int64_t>(bool_var_names_.size());
  bool_var_names_.push_back(std::move(name));
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(n);
  return id;
}

NodeId Context::constant(std::int64_t v) {
  Node n;
  n.op = Op::kConst;
  n.value = v;
  n.range = {v, v};
  return intern(n);
}

NodeId Context::bool_const(bool v) {
  Node n;
  n.op = Op::kBoolConst;
  n.value = v ? 1 : 0;
  return intern(n);
}

NodeId Context::add(NodeId a, NodeId b) {
  assert(!is_bool(a) && !is_bool(b));
  const Node& na = node(a);
  const Node& nb = node(b);
  if (na.op == Op::kConst && nb.op == Op::kConst) {
    return constant(na.value + nb.value);
  }
  if (na.op == Op::kConst && na.value == 0) return b;
  if (nb.op == Op::kConst && nb.value == 0) return a;
  Node n;
  n.op = Op::kAdd;
  // Addition is commutative: canonical operand order improves sharing.
  n.a = std::min(a, b);
  n.b = std::max(a, b);
  n.range = {na.range.lo + nb.range.lo, na.range.hi + nb.range.hi};
  return intern(n);
}

NodeId Context::sub(NodeId a, NodeId b) {
  assert(!is_bool(a) && !is_bool(b));
  const Node& na = node(a);
  const Node& nb = node(b);
  if (na.op == Op::kConst && nb.op == Op::kConst) {
    return constant(na.value - nb.value);
  }
  if (nb.op == Op::kConst && nb.value == 0) return a;
  if (a == b) return constant(0);
  Node n;
  n.op = Op::kSub;
  n.a = a;
  n.b = b;
  n.range = {na.range.lo - nb.range.hi, na.range.hi - nb.range.lo};
  return intern(n);
}

NodeId Context::mul(NodeId a, NodeId b) {
  assert(!is_bool(a) && !is_bool(b));
  const Node& na = node(a);
  const Node& nb = node(b);
  if (na.op == Op::kConst && nb.op == Op::kConst) {
    if (!mul_fits(na.value, nb.value)) {
      throw std::overflow_error("mul: constant overflow");
    }
    return constant(na.value * nb.value);
  }
  if (na.op == Op::kConst && na.value == 1) return b;
  if (nb.op == Op::kConst && nb.value == 1) return a;
  if ((na.op == Op::kConst && na.value == 0) ||
      (nb.op == Op::kConst && nb.value == 0)) {
    return constant(0);
  }
  Node n;
  n.op = Op::kMul;
  n.a = std::min(a, b);
  n.b = std::max(a, b);
  if (!mul_fits(na.range.lo, nb.range.lo) ||
      !mul_fits(na.range.lo, nb.range.hi) ||
      !mul_fits(na.range.hi, nb.range.lo) ||
      !mul_fits(na.range.hi, nb.range.hi)) {
    throw std::overflow_error("mul: range overflow");
  }
  const std::int64_t corners[] = {
      na.range.lo * nb.range.lo, na.range.lo * nb.range.hi,
      na.range.hi * nb.range.lo, na.range.hi * nb.range.hi};
  n.range = {*std::min_element(std::begin(corners), std::end(corners)),
             *std::max_element(std::begin(corners), std::end(corners))};
  return intern(n);
}

NodeId Context::ite(NodeId cond, NodeId then_e, NodeId else_e) {
  assert(is_bool(cond) && !is_bool(then_e) && !is_bool(else_e));
  const Node& nc = node(cond);
  if (nc.op == Op::kBoolConst) return nc.value ? then_e : else_e;
  if (then_e == else_e) return then_e;
  Node n;
  n.op = Op::kIte;
  n.a = cond;
  n.b = then_e;
  n.c = else_e;
  n.range = {std::min(node(then_e).range.lo, node(else_e).range.lo),
             std::max(node(then_e).range.hi, node(else_e).range.hi)};
  return intern(n);
}

NodeId Context::sum(std::span<const NodeId> xs) {
  if (xs.empty()) return constant(0);
  NodeId acc = xs[0];
  for (std::size_t i = 1; i < xs.size(); ++i) acc = add(acc, xs[i]);
  return acc;
}

namespace {
/// Constant-fold comparison when ranges are disjoint / nested suitably.
enum class Fold { kTrue, kFalse, kOpen };
}  // namespace

NodeId Context::le(NodeId a, NodeId b) {
  assert(!is_bool(a) && !is_bool(b));
  const Range ra = node(a).range;
  const Range rb = node(b).range;
  if (ra.hi <= rb.lo) return bool_const(true);
  if (ra.lo > rb.hi) return bool_const(false);
  Node n;
  n.op = Op::kLe;
  n.a = a;
  n.b = b;
  return intern(n);
}

NodeId Context::lt(NodeId a, NodeId b) { return lnot(le(b, a)); }
NodeId Context::ge(NodeId a, NodeId b) { return le(b, a); }
NodeId Context::gt(NodeId a, NodeId b) { return lnot(le(a, b)); }

NodeId Context::eq(NodeId a, NodeId b) {
  assert(!is_bool(a) && !is_bool(b));
  if (a == b) return bool_const(true);
  const Range ra = node(a).range;
  const Range rb = node(b).range;
  if (ra.hi < rb.lo || rb.hi < ra.lo) return bool_const(false);
  if (ra.lo == ra.hi && rb.lo == rb.hi) return bool_const(ra.lo == rb.lo);
  Node n;
  n.op = Op::kEq;
  n.a = std::min(a, b);
  n.b = std::max(a, b);
  return intern(n);
}

NodeId Context::ne(NodeId a, NodeId b) { return lnot(eq(a, b)); }

NodeId Context::lnot(NodeId a) {
  assert(is_bool(a));
  const Node& na = node(a);
  if (na.op == Op::kBoolConst) return bool_const(!na.value);
  if (na.op == Op::kNot) return na.a;  // double negation
  Node n;
  n.op = Op::kNot;
  n.a = a;
  return intern(n);
}

NodeId Context::land(NodeId a, NodeId b) {
  assert(is_bool(a) && is_bool(b));
  const Node& na = node(a);
  const Node& nb = node(b);
  if (na.op == Op::kBoolConst) return na.value ? b : bool_const(false);
  if (nb.op == Op::kBoolConst) return nb.value ? a : bool_const(false);
  if (a == b) return a;
  Node n;
  n.op = Op::kAnd;
  n.a = std::min(a, b);
  n.b = std::max(a, b);
  return intern(n);
}

NodeId Context::lor(NodeId a, NodeId b) {
  assert(is_bool(a) && is_bool(b));
  const Node& na = node(a);
  const Node& nb = node(b);
  if (na.op == Op::kBoolConst) return na.value ? bool_const(true) : b;
  if (nb.op == Op::kBoolConst) return nb.value ? bool_const(true) : a;
  if (a == b) return a;
  Node n;
  n.op = Op::kOr;
  n.a = std::min(a, b);
  n.b = std::max(a, b);
  return intern(n);
}

NodeId Context::implies(NodeId a, NodeId b) { return lor(lnot(a), b); }

NodeId Context::iff(NodeId a, NodeId b) {
  assert(is_bool(a) && is_bool(b));
  if (a == b) return bool_const(true);
  const Node& na = node(a);
  const Node& nb = node(b);
  if (na.op == Op::kBoolConst) return na.value ? b : lnot(b);
  if (nb.op == Op::kBoolConst) return nb.value ? a : lnot(a);
  Node n;
  n.op = Op::kIff;
  n.a = std::min(a, b);
  n.b = std::max(a, b);
  return intern(n);
}

NodeId Context::and_all(std::span<const NodeId> xs) {
  NodeId acc = bool_const(true);
  for (const NodeId x : xs) acc = land(acc, x);
  return acc;
}

NodeId Context::or_all(std::span<const NodeId> xs) {
  NodeId acc = bool_const(false);
  for (const NodeId x : xs) acc = lor(acc, x);
  return acc;
}

const std::string& Context::name(NodeId id) const {
  const Node& n = node(id);
  if (n.op == Op::kIntVar) {
    return int_var_names_[static_cast<std::size_t>(n.value)];
  }
  assert(n.op == Op::kBoolVar);
  return bool_var_names_[static_cast<std::size_t>(n.value)];
}

std::string Context::to_string(NodeId id) const {
  const Node& n = node(id);
  auto binary = [&](const char* op) {
    return std::string("(") + op + " " + to_string(n.a) + " " +
           to_string(n.b) + ")";
  };
  switch (n.op) {
    case Op::kConst: return std::to_string(n.value);
    case Op::kBoolConst: return n.value ? "true" : "false";
    case Op::kIntVar:
    case Op::kBoolVar: return name(id);
    case Op::kAdd: return binary("+");
    case Op::kSub: return binary("-");
    case Op::kMul: return binary("*");
    case Op::kIte:
      return "(ite " + to_string(n.a) + " " + to_string(n.b) + " " +
             to_string(n.c) + ")";
    case Op::kNot: return "(not " + to_string(n.a) + ")";
    case Op::kAnd: return binary("and");
    case Op::kOr: return binary("or");
    case Op::kImplies: return binary("=>");
    case Op::kIff: return binary("<=>");
    case Op::kEq: return binary("=");
    case Op::kNe: return binary("!=");
    case Op::kLe: return binary("<=");
    case Op::kLt: return binary("<");
    case Op::kGe: return binary(">=");
    case Op::kGt: return binary(">");
  }
  return "?";
}

// --- Evaluator ------------------------------------------------------------

void Evaluator::set_int(NodeId var, std::int64_t v) {
  const Node& n = ctx_.node(var);
  assert(n.op == Op::kIntVar);
  int_values_[n.value] = v;
}

void Evaluator::set_bool(NodeId var, bool v) {
  const Node& n = ctx_.node(var);
  assert(n.op == Op::kBoolVar);
  bool_values_[n.value] = v;
}

std::int64_t Evaluator::eval_int(NodeId e) const {
  const Node& n = ctx_.node(e);
  switch (n.op) {
    case Op::kConst: return n.value;
    case Op::kIntVar: {
      const auto it = int_values_.find(n.value);
      if (it == int_values_.end()) {
        throw std::logic_error("eval: unassigned int var " + ctx_.name(e));
      }
      return it->second;
    }
    case Op::kAdd: return eval_int(n.a) + eval_int(n.b);
    case Op::kSub: return eval_int(n.a) - eval_int(n.b);
    case Op::kMul: return eval_int(n.a) * eval_int(n.b);
    case Op::kIte: return eval_bool(n.a) ? eval_int(n.b) : eval_int(n.c);
    default: throw std::logic_error("eval_int on boolean node");
  }
}

bool Evaluator::eval_bool(NodeId e) const {
  const Node& n = ctx_.node(e);
  switch (n.op) {
    case Op::kBoolConst: return n.value != 0;
    case Op::kBoolVar: {
      const auto it = bool_values_.find(n.value);
      if (it == bool_values_.end()) {
        throw std::logic_error("eval: unassigned bool var " + ctx_.name(e));
      }
      return it->second;
    }
    case Op::kNot: return !eval_bool(n.a);
    case Op::kAnd: return eval_bool(n.a) && eval_bool(n.b);
    case Op::kOr: return eval_bool(n.a) || eval_bool(n.b);
    case Op::kImplies: return !eval_bool(n.a) || eval_bool(n.b);
    case Op::kIff: return eval_bool(n.a) == eval_bool(n.b);
    case Op::kEq: return eval_int(n.a) == eval_int(n.b);
    case Op::kNe: return eval_int(n.a) != eval_int(n.b);
    case Op::kLe: return eval_int(n.a) <= eval_int(n.b);
    case Op::kLt: return eval_int(n.a) < eval_int(n.b);
    case Op::kGe: return eval_int(n.a) >= eval_int(n.b);
    case Op::kGt: return eval_int(n.a) > eval_int(n.b);
    default: throw std::logic_error("eval_bool on integer node");
  }
}

}  // namespace optalloc::ir

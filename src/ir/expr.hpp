#pragma once
// Bounded-integer constraint IR — the "arithmetic formulae over integers"
// of the paper's Section 3. A Context owns a DAG of hash-consed nodes;
// expressions are Boolean combinations of linear and non-linear integer
// (in)equations over variables with explicitly bounded ranges (the bounded
// ranges are what make the reduction to SAT possible, cf. Section 5).
//
// Node kinds:
//   integer-valued: Const, IntVar, Add, Sub, Mul, Ite
//   boolean-valued: BoolVar, BoolConst, Not, And, Or, Implies, Iff,
//                   Eq, Ne, Le, Lt, Ge, Gt

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace optalloc::ir {

/// Node handle; indexes into the owning Context. Total ordering makes
/// handles usable as map keys.
enum class NodeId : std::int32_t {};
inline constexpr NodeId kInvalidNode{-1};

enum class Op : std::uint8_t {
  // Integer-valued.
  kConst,
  kIntVar,
  kAdd,
  kSub,
  kMul,
  kIte,  ///< ite(cond, then, else) — integer-valued conditional
  // Boolean-valued.
  kBoolConst,
  kBoolVar,
  kNot,
  kAnd,
  kOr,
  kImplies,
  kIff,
  kEq,
  kNe,
  kLe,
  kLt,
  kGe,
  kGt,
};

/// Inclusive integer interval; the inferred value range of a node.
struct Range {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  bool contains(std::int64_t v) const { return lo <= v && v <= hi; }
  std::int64_t width() const { return hi - lo; }
  bool operator==(const Range&) const = default;
};

struct Node {
  Op op;
  NodeId a = kInvalidNode;  ///< first operand (or condition for Ite)
  NodeId b = kInvalidNode;  ///< second operand (or 'then' for Ite)
  NodeId c = kInvalidNode;  ///< third operand ('else' for Ite)
  std::int64_t value = 0;   ///< constant payload / variable index
  Range range;              ///< integer nodes: inferred bounds
};

/// Expression context: arena + hash-consing + range inference.
/// All builder methods return existing nodes for structurally identical
/// inputs and fold constants eagerly.
class Context {
 public:
  // --- Leaves -----------------------------------------------------------

  /// Fresh bounded integer variable. Requires lo <= hi.
  NodeId int_var(std::string name, std::int64_t lo, std::int64_t hi);
  /// Fresh Boolean variable.
  NodeId bool_var(std::string name);
  NodeId constant(std::int64_t v);
  NodeId bool_const(bool v);

  // --- Integer operators -------------------------------------------------

  NodeId add(NodeId a, NodeId b);
  NodeId sub(NodeId a, NodeId b);
  NodeId mul(NodeId a, NodeId b);
  NodeId ite(NodeId cond, NodeId then_e, NodeId else_e);
  NodeId sum(std::span<const NodeId> xs);

  // --- Comparisons --------------------------------------------------------

  NodeId eq(NodeId a, NodeId b);
  NodeId ne(NodeId a, NodeId b);
  NodeId le(NodeId a, NodeId b);
  NodeId lt(NodeId a, NodeId b);
  NodeId ge(NodeId a, NodeId b);
  NodeId gt(NodeId a, NodeId b);

  // --- Boolean connectives -------------------------------------------------

  NodeId lnot(NodeId a);
  NodeId land(NodeId a, NodeId b);
  NodeId lor(NodeId a, NodeId b);
  NodeId implies(NodeId a, NodeId b);
  NodeId iff(NodeId a, NodeId b);
  NodeId and_all(std::span<const NodeId> xs);
  NodeId or_all(std::span<const NodeId> xs);

  // --- Introspection --------------------------------------------------------

  const Node& node(NodeId id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  std::size_t size() const { return nodes_.size(); }
  bool is_bool(NodeId id) const;
  Range range(NodeId id) const { return node(id).range; }
  /// Name of a variable node (IntVar/BoolVar only).
  const std::string& name(NodeId id) const;
  /// Render an expression as an s-expression string (debugging).
  std::string to_string(NodeId id) const;

  /// Number of variables created (IntVar + BoolVar).
  std::size_t num_int_vars() const { return int_var_names_.size(); }
  std::size_t num_bool_vars() const { return bool_var_names_.size(); }

 private:
  friend class Evaluator;

  NodeId intern(Node n);

  struct NodeKey {
    Op op;
    NodeId a, b, c;
    std::int64_t value;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const;
  };

  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, NodeId, NodeKeyHash> interned_;
  std::vector<std::string> int_var_names_;   // by node.value
  std::vector<std::string> bool_var_names_;  // by node.value
};

/// Assignment of values to variables; evaluates expressions for tests and
/// for the independent solution verifier.
class Evaluator {
 public:
  explicit Evaluator(const Context& ctx) : ctx_(ctx) {}

  void set_int(NodeId var, std::int64_t v);
  void set_bool(NodeId var, bool v);

  std::int64_t eval_int(NodeId e) const;
  bool eval_bool(NodeId e) const;

 private:
  const Context& ctx_;
  std::unordered_map<std::int64_t, std::int64_t> int_values_;  // var idx -> v
  std::unordered_map<std::int64_t, bool> bool_values_;
};

}  // namespace optalloc::ir

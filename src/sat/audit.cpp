// Solver-state invariant auditor. Deliberately written against the
// *definitions* of the invariants rather than the code paths that maintain
// them, so a bookkeeping bug in propagate()/cancel_until() cannot hide
// itself: the audit recomputes watch membership, trail/level agreement and
// clause well-formedness from scratch in O(DB size).

#include <string>
#include <unordered_map>
#include <vector>

#include "sat/solver.hpp"

namespace optalloc::sat {
namespace {

void report(std::vector<std::string>* out, bool& ok, std::string msg) {
  ok = false;
  if (out) out->push_back(std::move(msg));
}

}  // namespace

bool Solver::audit(std::vector<std::string>* out) const {
  bool ok = true;
  const std::size_t nvars = static_cast<std::size_t>(num_vars());

  // -- Table sizes -------------------------------------------------------
  if (assigns_.size() != nvars || vardata_.size() != nvars ||
      level_.size() != nvars || polarity_.size() != nvars ||
      decision_.size() != nvars || watches_.size() != 2 * nvars) {
    report(out, ok, "per-variable table sizes disagree with num_vars");
    return ok;  // further checks would index out of bounds
  }

  // -- Queue heads and decision-level markers ----------------------------
  if (qhead_ > trail_.size()) {
    report(out, ok, "qhead beyond end of trail");
  }
  if (theory_qhead_ > trail_.size()) {
    report(out, ok, "theory_qhead beyond end of trail");
  }
  for (std::size_t i = 0; i < trail_lim_.size(); ++i) {
    const std::int32_t lim = trail_lim_[i];
    if (lim < 0 || static_cast<std::size_t>(lim) > trail_.size() ||
        (i > 0 && lim < trail_lim_[i - 1])) {
      report(out, ok,
             "trail_lim[" + std::to_string(i) + "] out of order or range");
    }
  }

  // -- Trail vs. assignment state ----------------------------------------
  std::vector<char> on_trail(nvars, 0);
  std::size_t dl = 0;
  for (std::size_t i = 0; i < trail_.size(); ++i) {
    while (dl < trail_lim_.size() &&
           static_cast<std::size_t>(trail_lim_[dl]) <= i) {
      ++dl;
    }
    const Lit l = trail_[i];
    const Var v = l.var();
    if (v < 0 || static_cast<std::size_t>(v) >= nvars) {
      report(out, ok, "trail literal over unknown variable");
      continue;
    }
    if (on_trail[static_cast<std::size_t>(v)]) {
      report(out, ok, "variable " + std::to_string(v) + " on trail twice");
    }
    on_trail[static_cast<std::size_t>(v)] = 1;
    if (value(l) != LBool::kTrue) {
      report(out, ok,
             "trail literal for variable " + std::to_string(v) +
                 " not assigned true");
    }
    if (level_[static_cast<std::size_t>(v)] !=
        vardata_[static_cast<std::size_t>(v)].level) {
      report(out, ok,
             "level mirror disagrees with vardata for variable " +
                 std::to_string(v));
    }
    if (level_[static_cast<std::size_t>(v)] != static_cast<std::int32_t>(dl)) {
      report(out, ok,
             "variable " + std::to_string(v) + " at trail position " +
                 std::to_string(i) + " has level " +
                 std::to_string(level_[static_cast<std::size_t>(v)]) +
                 ", expected " + std::to_string(dl));
    }
  }
  for (std::size_t v = 0; v < nvars; ++v) {
    if ((assigns_[v] != LBool::kUndef) != (on_trail[v] != 0)) {
      report(out, ok,
             "variable " + std::to_string(v) +
                 " assigned/on-trail status disagree");
    }
  }

  // -- Reason-clause sanity ----------------------------------------------
  for (const Lit l : trail_) {
    const Var v = l.var();
    const CRef r = vardata_[static_cast<std::size_t>(v)].reason;
    if (r == kUndefClause) continue;
    const Clause& c = arena_.deref(r);
    if (c.size() < 1 || c[0].var() != v || value(c[0]) != LBool::kTrue) {
      report(out, ok,
             "reason clause of variable " + std::to_string(v) +
                 " does not imply it");
      continue;
    }
    for (std::uint32_t j = 1; j < c.size(); ++j) {
      if (value(c[j]) != LBool::kFalse ||
          level_[static_cast<std::size_t>(c[j].var())] >
              level_[static_cast<std::size_t>(v)]) {
        report(out, ok,
               "reason clause of variable " + std::to_string(v) +
                   " has a non-false or later-level antecedent");
        break;
      }
    }
  }

  // -- Clause well-formedness and watch membership -----------------------
  // Each attached clause must be watched on exactly its first two literals;
  // every watcher must point back at a live attached clause.
  std::unordered_map<CRef, int> watch_count;
  auto check_clause_list = [&](const std::vector<CRef>& list,
                               const char* what) {
    for (const CRef cref : list) {
      const Clause& c = arena_.deref(cref);
      if (c.size() < 2) {
        report(out, ok, std::string(what) + " clause with fewer than 2 "
                        "literals attached");
      }
      for (std::uint32_t a = 0; a < c.size(); ++a) {
        for (std::uint32_t b = a + 1; b < c.size(); ++b) {
          if (c[a].var() == c[b].var()) {
            report(out, ok,
                   std::string(what) + " clause contains variable " +
                       std::to_string(c[a].var()) + " twice");
            b = c.size();
            a = c.size();
            break;
          }
        }
      }
      watch_count.emplace(cref, 0);
    }
  };
  check_clause_list(clauses_, "problem");
  check_clause_list(learnts_, "learnt");

  for (std::size_t idx = 0; idx < watches_.size(); ++idx) {
    const Lit watched = Lit::from_index(static_cast<std::int32_t>(idx));
    for (const Watcher& w : watches_[idx]) {
      auto it = watch_count.find(w.cref);
      if (it == watch_count.end()) {
        report(out, ok,
               "watcher on " + std::to_string(idx) +
                   " references a detached clause");
        continue;
      }
      const Clause& c = arena_.deref(w.cref);
      const Lit neg = ~watched;
      if (c.size() < 2 || (c[0] != neg && c[1] != neg)) {
        report(out, ok,
               "clause watched on a literal that is not one of its first "
               "two");
      }
      ++it->second;
    }
  }
  for (const auto& [cref, count] : watch_count) {
    if (count != 2) {
      report(out, ok,
             "attached clause has " + std::to_string(count) +
                 " watchers, expected 2");
    }
  }
  return ok;
}

}  // namespace optalloc::sat

#pragma once
// Fundamental SAT types: variables, literals, and the three-valued logic
// used by the CDCL solver. Follows the classic MiniSat conventions: a
// literal packs variable index and sign into one int, so literals index
// arrays (watch lists, seen flags) directly.

#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

namespace optalloc::sat {

/// Variable index, 0-based. Negative values are invalid.
using Var = std::int32_t;
inline constexpr Var kUndefVar = -1;

/// A literal is 2*var + sign; sign==1 means the negated literal.
class Lit {
 public:
  constexpr Lit() : x_(-2) {}
  constexpr Lit(Var v, bool sign) : x_(2 * v + static_cast<int>(sign)) {}

  static constexpr Lit from_index(std::int32_t idx) {
    Lit l;
    l.x_ = idx;
    return l;
  }

  constexpr Var var() const { return x_ >> 1; }
  constexpr bool sign() const { return x_ & 1; }
  /// Dense index usable for array lookup: in [0, 2*num_vars).
  constexpr std::int32_t index() const { return x_; }

  constexpr Lit operator~() const { return from_index(x_ ^ 1); }
  /// Flip sign iff b (used to orient literals by assignment polarity).
  constexpr Lit operator^(bool b) const {
    return from_index(x_ ^ static_cast<int>(b));
  }

  constexpr bool operator==(const Lit&) const = default;
  constexpr bool operator<(const Lit& o) const { return x_ < o.x_; }

 private:
  std::int32_t x_;
};

inline constexpr Lit kUndefLit{};

/// Positive/negative literal constructors for readability at call sites.
constexpr Lit pos(Var v) { return Lit(v, false); }
constexpr Lit neg(Var v) { return Lit(v, true); }

/// Three-valued logic: True, False, Undef.
enum class LBool : std::uint8_t { kTrue = 0, kFalse = 1, kUndef = 2 };

constexpr LBool to_lbool(bool b) { return b ? LBool::kTrue : LBool::kFalse; }

/// Negation that maps Undef to Undef.
constexpr LBool operator~(LBool b) {
  switch (b) {
    case LBool::kTrue: return LBool::kFalse;
    case LBool::kFalse: return LBool::kTrue;
    default: return LBool::kUndef;
  }
}

/// XOR with a sign bit: value of a literal given the value of its variable.
constexpr LBool xor_sign(LBool b, bool sign) { return sign ? ~b : b; }

}  // namespace optalloc::sat

template <>
struct std::hash<optalloc::sat::Lit> {
  std::size_t operator()(optalloc::sat::Lit l) const noexcept {
    return std::hash<std::int32_t>{}(l.index());
  }
};

#include "sat/solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sat/proof.hpp"
#include "util/luby.hpp"

namespace optalloc::sat {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Push one solve() call's worth of deltas into the global metrics
/// registry — once per call, so the search loop itself never touches
/// shared state.
void flush_solve_metrics(const SolverStats& before, const SolverStats& after) {
  static const obs::Metric solve_calls = obs::counter("sat.solve_calls");
  static const obs::Metric decisions = obs::counter("sat.decisions");
  static const obs::Metric propagations = obs::counter("sat.propagations");
  static const obs::Metric conflicts = obs::counter("sat.conflicts");
  static const obs::Metric restarts = obs::counter("sat.restarts");
  static const obs::Metric theory = obs::counter("sat.theory_propagations");
  static const obs::Metric gc_runs = obs::counter("sat.gc_runs");
  static const obs::Metric exported = obs::counter("sat.clauses_exported");
  static const obs::Metric imported = obs::counter("sat.clauses_imported");
  static const obs::Metric t_prop = obs::timer("sat.time.propagate");
  static const obs::Metric t_analyze = obs::timer("sat.time.analyze");
  static const obs::Metric t_reduce = obs::timer("sat.time.reduce_db");
  const auto delta = [](std::uint64_t a, std::uint64_t b) {
    return static_cast<std::int64_t>(a - b);
  };
  obs::add(solve_calls, 1);
  obs::add(decisions, delta(after.decisions, before.decisions));
  obs::add(propagations, delta(after.propagations, before.propagations));
  obs::add(conflicts, delta(after.conflicts, before.conflicts));
  obs::add(restarts, delta(after.restarts, before.restarts));
  obs::add(theory,
           delta(after.theory_propagations, before.theory_propagations));
  obs::add(gc_runs, delta(after.gc_runs, before.gc_runs));
  obs::add(exported, delta(after.clauses_exported, before.clauses_exported));
  obs::add(imported, delta(after.clauses_imported, before.clauses_imported));
  if (after.propagate_seconds > before.propagate_seconds) {
    obs::record(t_prop, after.propagate_seconds - before.propagate_seconds);
  }
  if (after.analyze_seconds > before.analyze_seconds) {
    obs::record(t_analyze, after.analyze_seconds - before.analyze_seconds);
  }
  if (after.reduce_seconds > before.reduce_seconds) {
    obs::record(t_reduce, after.reduce_seconds - before.reduce_seconds);
  }
}

}  // namespace

Solver::Solver() : order_(activity_) {}

Var Solver::new_var(bool decision) {
  const Var v = num_vars();
  assigns_.push_back(LBool::kUndef);
  vardata_.push_back({});
  level_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  activity_.push_back(0.0);
  polarity_.push_back(static_cast<char>(default_polarity));
  decision_.push_back(static_cast<char>(decision));
  seen_.push_back(0);
  lbd_seen_.push_back(0);
  frozen_.push_back(0);
  eliminated_.push_back(0);
  if (decision) {
    decision_vars_.push_back(v);
    order_.insert(v);
  }
  for (Propagator* p : propagators_) p->on_new_var(v);
  return v;
}

bool Solver::add_clause(std::span<const Lit> lits) {
  return add_clause_impl(lits, /*theory=*/false);
}

bool Solver::add_theory_clause(std::span<const Lit> lits) {
  return add_clause_impl(lits, /*theory=*/true);
}

bool Solver::add_clause_impl(std::span<const Lit> lits, bool theory,
                             bool log_input) {
  assert(decision_level() == 0);
  if (!ok_) return false;
  // A clause over an eliminated variable would silently invalidate that
  // elimination's model reconstruction, so the variable is restored
  // first (see restore_var). Restoration may itself cascade and can even
  // derive top-level UNSAT while re-propagating.
  for (const Lit l : lits) {
    if (is_eliminated(l.var())) restore_var(l.var());
  }
  if (!ok_) return false;
  // Log the clause as given: the normalized form below is recovered by the
  // checker's own unit propagation, so re-logging it would be redundant.
  // (Restored clauses skip this — they are still live in the checker.)
  if (proof_ && log_input) {
    if (theory) {
      proof_->add_theory(lits);
    } else {
      proof_->add_input(lits);
    }
  }

  // Normalize: sort, remove duplicates, drop level-0 false literals, and
  // detect tautologies / already-satisfied clauses.
  std::vector<Lit> cl(lits.begin(), lits.end());
  std::sort(cl.begin(), cl.end());
  Lit prev = kUndefLit;
  std::size_t j = 0;
  for (const Lit l : cl) {
    if (value(l) == LBool::kTrue || l == ~prev) return true;  // satisfied/taut
    if (value(l) != LBool::kFalse && l != prev) {
      cl[j++] = l;
      prev = l;
    }
  }
  cl.resize(j);
  stats_.added_literals += cl.size();

  if (cl.empty()) {
    if (proof_) proof_->add_lemma({});
    ok_ = false;
    return false;
  }
  if (cl.size() == 1) {
    unchecked_enqueue(cl[0], kUndefClause);
    ok_ = (propagate() == kUndefClause);
    if (!ok_ && proof_) proof_->add_lemma({});
    return ok_;
  }
  const CRef cref = arena_.alloc(cl, /*learnt=*/false);
  clauses_.push_back(cref);
  attach_clause(cref);
  return true;
}

void Solver::attach_clause(CRef cref) {
  const Clause& c = arena_.deref(cref);
  assert(c.size() >= 2);
  watches_[(~c[0]).index()].push_back({cref, c[1]});
  watches_[(~c[1]).index()].push_back({cref, c[0]});
}

void Solver::detach_clause(CRef cref) {
  const Clause& c = arena_.deref(cref);
  auto strip = [&](Lit w) {
    auto& ws = watches_[(~w).index()];
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].cref == cref) {
        ws[i] = ws.back();
        ws.pop_back();
        return;
      }
    }
    assert(false && "watcher not found");
  };
  strip(c[0]);
  strip(c[1]);
}

bool Solver::locked(CRef cref) const {
  const Clause& c = arena_.deref(cref);
  const Var v = c[0].var();
  return value(c[0]) == LBool::kTrue && vardata_[v].reason == cref;
}

void Solver::remove_clause(CRef cref, bool log_delete) {
  const Clause& c = arena_.deref(cref);
  // Theory reason clauses are ephemeral and never proof-logged as
  // deletions: keeping them in the checker DB is sound (RUP only gets
  // stronger) and they may still back an UNSAT core. Elimination-removed
  // clauses pass log_delete=false for the same reason: staying live in
  // the RUP checker is what lets restore_var() re-attach them without
  // any proof traffic.
  if (proof_ && log_delete && !c.theory()) proof_->add_delete(c.lits());
  detach_clause(cref);
  // A locked clause must stay alive as a reason; callers check locked().
  assert(!locked(cref));
  arena_.free_clause(cref);
}

void Solver::unchecked_enqueue(Lit l, CRef reason) {
  assert(value(l) == LBool::kUndef);
  const Var v = l.var();
  assigns_[v] = to_lbool(!l.sign());
  vardata_[v] = {reason, decision_level()};
  level_[v] = decision_level();
  trail_.push_back(l);
}

bool Solver::theory_enqueue(Lit l, std::span<const Lit> reason) {
  assert(!reason.empty() && reason[0] == l);
  if (value(l) == LBool::kTrue) return true;
  if (value(l) == LBool::kFalse) return false;
  if (proof_) proof_->add_theory(reason);
  const CRef cref =
      arena_.alloc(reason, /*learnt=*/true, /*theory=*/true);
  unchecked_enqueue(l, cref);
  ++stats_.theory_propagations;
  return true;
}

CRef Solver::propagate() {
  for (;;) {
    // Clause (two-watched-literal) propagation to fixpoint.
    while (qhead_ < trail_.size()) {
      const Lit p = trail_[qhead_++];
      ++stats_.propagations;
      auto& ws = watches_[p.index()];
      std::size_t i = 0, j = 0;
      const std::size_t n = ws.size();
      while (i < n) {
        const Watcher w = ws[i];
        if (value(w.blocker) == LBool::kTrue) {
          ws[j++] = ws[i++];
          continue;
        }
        Clause& c = arena_.deref(w.cref);
        // Make sure the false literal is c[1].
        const Lit false_lit = ~p;
        if (c[0] == false_lit) {
          c[0] = c[1];
          c[1] = false_lit;
        }
        ++i;
        const Lit first = c[0];
        if (first != w.blocker && value(first) == LBool::kTrue) {
          ws[j++] = {w.cref, first};
          continue;
        }
        // Look for a new literal to watch.
        bool found = false;
        for (std::uint32_t k = 2; k < c.size(); ++k) {
          if (value(c[k]) != LBool::kFalse) {
            c[1] = c[k];
            c[k] = false_lit;
            watches_[(~c[1]).index()].push_back({w.cref, first});
            found = true;
            break;
          }
        }
        if (found) continue;
        // Clause is unit or conflicting.
        ws[j++] = {w.cref, first};
        if (value(first) == LBool::kFalse) {
          // Conflict: copy remaining watchers and bail out.
          while (i < n) ws[j++] = ws[i++];
          ws.resize(j);
          qhead_ = trail_.size();
          return w.cref;
        }
        unchecked_enqueue(first, w.cref);
      }
      ws.resize(j);
    }

    // Theory propagation: feed newly assigned literals to the propagators.
    if (propagators_.empty() || theory_qhead_ >= trail_.size()) break;
    const Lit p = trail_[theory_qhead_++];
    for (Propagator* prop : propagators_) {
      theory_conflict_.clear();
      if (!prop->on_assign(p, theory_conflict_)) {
        assert(!theory_conflict_.empty());
        if (proof_) proof_->add_theory(theory_conflict_);
        qhead_ = trail_.size();
        return arena_.alloc(theory_conflict_, /*learnt=*/true,
                            /*theory=*/true);
      }
    }
  }
  return kUndefClause;
}

void Solver::cancel_until(std::int32_t target_level) {
  if (decision_level() <= target_level) return;
  const std::size_t new_size =
      static_cast<std::size_t>(trail_lim_[target_level]);
  for (std::size_t c = trail_.size(); c-- > new_size;) {
    const Lit l = trail_[c];
    const Var v = l.var();
    if (c < theory_qhead_) {
      for (Propagator* p : propagators_) p->on_unassign(l);
    }
    assigns_[v] = LBool::kUndef;
    if (vardata_[v].reason != kUndefClause &&
        arena_.deref(vardata_[v].reason).theory()) {
      arena_.free_clause(vardata_[v].reason);
    }
    vardata_[v].reason = kUndefClause;
    if (phase_saving) polarity_[v] = static_cast<char>(l.sign());
    if (decision_[v]) order_.insert(v);
  }
  trail_.resize(new_size);
  trail_lim_.resize(target_level);
  qhead_ = new_size;
  theory_qhead_ = std::min(theory_qhead_, new_size);
}

void Solver::var_bump(Var v) {
  if ((activity_[v] += var_inc_) > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_.increased(v);
}

void Solver::cla_bump(Clause& c) {
  float a = c.activity() + static_cast<float>(cla_inc_);
  if (a > 1e20f) {
    for (const CRef cref : learnts_) {
      Clause& lc = arena_.deref(cref);
      lc.set_activity(lc.activity() * 1e-20f);
    }
    cla_inc_ *= 1e-20;
    a = c.activity() + static_cast<float>(cla_inc_);
  }
  c.set_activity(a);
}

std::uint32_t Solver::compute_lbd(std::span<const Lit> lits) {
  ++lbd_stamp_;
  std::uint32_t lbd = 0;
  for (const Lit l : lits) {
    const std::int32_t lev = level_[l.var()];
    if (lev > 0 && lbd_seen_[static_cast<std::size_t>(lev) %
                             lbd_seen_.size()] != lbd_stamp_) {
      lbd_seen_[static_cast<std::size_t>(lev) % lbd_seen_.size()] =
          lbd_stamp_;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::analyze(CRef confl, std::vector<Lit>& out_learnt,
                     std::int32_t& out_btlevel, std::uint32_t& out_lbd) {
  int path_count = 0;
  Lit p = kUndefLit;
  out_learnt.clear();
  out_learnt.push_back(kUndefLit);  // placeholder for the asserting literal

  std::size_t index = trail_.size();
  do {
    assert(confl != kUndefClause);
    Clause& c = arena_.deref(confl);
    if (c.learnt() && !c.theory()) cla_bump(c);

    for (std::uint32_t j = (p == kUndefLit) ? 0 : 1; j < c.size(); ++j) {
      const Lit q = c[j];
      const Var v = q.var();
      if (!seen_[v] && level_[v] > 0) {
        var_bump(v);
        seen_[v] = 1;
        if (level_[v] >= decision_level()) {
          ++path_count;
        } else {
          out_learnt.push_back(q);
        }
      }
    }

    // Select next literal to resolve on.
    while (!seen_[trail_[index - 1].var()]) --index;
    --index;
    p = trail_[index];
    confl = vardata_[p.var()].reason;
    seen_[p.var()] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Conflict clause minimization (recursive, via abstraction levels).
  analyze_toclear_.assign(out_learnt.begin(), out_learnt.end());
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    abstract_levels |= 1u << (level_[out_learnt[i].var()] & 31);
  }
  std::size_t j = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    const Var v = out_learnt[i].var();
    if (vardata_[v].reason == kUndefClause ||
        !lit_redundant(out_learnt[i], abstract_levels)) {
      out_learnt[j++] = out_learnt[i];
    }
  }
  stats_.minimized_literals += out_learnt.size() - j;
  out_learnt.resize(j);
  stats_.learnt_literals += out_learnt.size();

  // Find backtrack level: the maximum level among out_learnt[1..].
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (level_[out_learnt[i].var()] > level_[out_learnt[max_i].var()]) {
        max_i = i;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level_[out_learnt[1].var()];
  }

  out_lbd = compute_lbd(out_learnt);
  for (const Lit l : analyze_toclear_) seen_[l.var()] = 0;
}

bool Solver::lit_redundant(Lit lit, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(lit);
  const std::size_t top = analyze_toclear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    assert(vardata_[q.var()].reason != kUndefClause);
    const Clause& c = arena_.deref(vardata_[q.var()].reason);
    for (std::uint32_t j = 1; j < c.size(); ++j) {
      const Lit l = c[j];
      const Var v = l.var();
      if (seen_[v] || level_[v] == 0) continue;
      if (vardata_[v].reason != kUndefClause &&
          ((1u << (level_[v] & 31)) & abstract_levels)) {
        seen_[v] = 1;
        analyze_stack_.push_back(l);
        analyze_toclear_.push_back(l);
      } else {
        for (std::size_t k = top; k < analyze_toclear_.size(); ++k) {
          seen_[analyze_toclear_[k].var()] = 0;
        }
        analyze_toclear_.resize(top);
        return false;
      }
    }
  }
  return true;
}

void Solver::analyze_final(Lit p) {
  conflict_core_.clear();
  conflict_core_.push_back(p);
  if (decision_level() == 0) return;

  seen_[p.var()] = 1;
  for (std::size_t i = trail_.size();
       i-- > static_cast<std::size_t>(trail_lim_[0]);) {
    const Var v = trail_[i].var();
    if (!seen_[v]) continue;
    if (vardata_[v].reason == kUndefClause) {
      assert(level_[v] > 0);
      conflict_core_.push_back(~trail_[i]);
    } else {
      const Clause& c = arena_.deref(vardata_[v].reason);
      for (std::uint32_t j = 1; j < c.size(); ++j) {
        if (level_[c[j].var()] > 0) seen_[c[j].var()] = 1;
      }
    }
    seen_[v] = 0;
  }
  seen_[p.var()] = 0;
}

Lit Solver::pick_branch_lit() {
  // Diversification: occasionally branch on a uniformly random unassigned
  // variable instead of the VSIDS pick (probed, not exhaustive — falling
  // through to the heap keeps this O(1) even on nearly-full trails).
  if (random_branch_freq > 0.0 && !decision_vars_.empty() &&
      rng_.chance(random_branch_freq)) {
    for (int probe = 0; probe < 8; ++probe) {
      const Var v = decision_vars_[rng_.index(decision_vars_.size())];
      if (assigns_[v] == LBool::kUndef && decision_[v]) {
        ++stats_.random_decisions;
        return Lit(v, polarity_[v] != 0);
      }
    }
  }
  while (!order_.empty()) {
    const Var v = order_.pop();
    if (assigns_[v] == LBool::kUndef && decision_[v]) {
      return Lit(v, polarity_[v] != 0);
    }
  }
  return kUndefLit;
}

void Solver::maybe_export(std::span<const Lit> lits, std::uint32_t lbd) {
  if (lits.empty() || lits.size() > share_.max_export_size) return;
  if (lits.size() > 2 && lbd > share_.max_export_lbd) return;
  if (share_.export_var_limit >= 0) {
    for (const Lit l : lits) {
      if (l.var() >= share_.export_var_limit) return;
    }
  }
  share_.export_clause(lits, lbd);
  ++stats_.clauses_exported;
}

bool Solver::attach_imported(const SharedClause& sc) {
  assert(decision_level() == 0);
  import_scratch_.clear();
  for (const Lit l : sc.lits) {
    if (l.var() < 0 || l.var() >= num_vars()) return true;  // malformed: drop
    // A foreign clause over a locally eliminated variable cannot be
    // attached: the variable no longer exists here and re-introducing it
    // would break model reconstruction. Sharing clients freeze the export
    // range, so this only rejects clauses from outside it.
    if (eliminated_[l.var()] != 0) return true;
    if (value(l) == LBool::kTrue) return true;  // satisfied at level 0
    if (value(l) != LBool::kFalse) import_scratch_.push_back(l);
  }
  ++stats_.clauses_imported;
  if (import_scratch_.empty()) {
    // Every literal is false at level 0: the shared formula is UNSAT.
    ok_ = false;
    return false;
  }
  if (import_scratch_.size() == 1) {
    unchecked_enqueue(import_scratch_[0], kUndefClause);
    ok_ = (propagate() == kUndefClause);
    return ok_;
  }
  const CRef cref = arena_.alloc(import_scratch_, /*learnt=*/true);
  Clause& c = arena_.deref(cref);
  c.set_lbd(std::min<std::uint32_t>(
      sc.lbd, static_cast<std::uint32_t>(import_scratch_.size())));
  learnts_.push_back(cref);
  attach_clause(cref);
  return true;
}

bool Solver::import_shared() {
  // Imports are suppressed under proof logging: a foreign clause has no
  // RUP derivation in this solver's log, so attaching it would break the
  // DRAT certificate (see ShareHooks docs; the portfolio degrades to
  // bound-and-incumbent cooperation when certifying).
  if (!share_.import_clauses || proof_ != nullptr || !ok_) return ok_;
  import_buf_.clear();
  share_.import_clauses(import_buf_);
  for (const SharedClause& sc : import_buf_) {
    if (!attach_imported(sc)) break;
  }
  return ok_;
}

void Solver::reduce_db() {
  // Sort learnt clauses by (LBD descending, activity ascending) so the
  // weakest half is removed first; keep binary/glue clauses and reasons.
  std::sort(learnts_.begin(), learnts_.end(), [&](CRef a, CRef b) {
    const Clause& ca = arena_.deref(a);
    const Clause& cb = arena_.deref(b);
    if (ca.lbd() != cb.lbd()) return ca.lbd() > cb.lbd();
    return ca.activity() < cb.activity();
  });
  const std::size_t half = learnts_.size() / 2;
  std::size_t j = 0;
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    const CRef cref = learnts_[i];
    const Clause& c = arena_.deref(cref);
    if (i < half && c.size() > 2 && c.lbd() > 2 && !locked(cref)) {
      remove_clause(cref);
      ++stats_.removed_clauses;
    } else {
      learnts_[j++] = cref;
    }
  }
  learnts_.resize(j);
  if (arena_.wasted() * 2 > arena_.size()) garbage_collect();
}

void Solver::reloc_all(ClauseArena& to) {
  for (auto& ws : watches_) {
    for (Watcher& w : ws) w.cref = arena_.reloc(w.cref, to);
  }
  for (const Lit l : trail_) {
    CRef& r = vardata_[l.var()].reason;
    if (r != kUndefClause) r = arena_.reloc(r, to);
  }
  for (CRef& c : clauses_) c = arena_.reloc(c, to);
  for (CRef& c : learnts_) c = arena_.reloc(c, to);
}

void Solver::garbage_collect() {
  const std::size_t before = arena_.size();
  ClauseArena to;
  reloc_all(to);
  arena_.swap(to);
  ++stats_.gc_runs;
  sync_resource_usage();
  if (obs::trace_enabled()) {
    obs::TraceEvent("solver_gc")
        .num("gc_runs", stats_.gc_runs)
        .num("arena_before", static_cast<std::int64_t>(before))
        .num("arena_after", static_cast<std::int64_t>(arena_.size()));
  }
}

bool Solver::simplify() {
  assert(decision_level() == 0);
  if (!ok_) return false;
  if (propagate() != kUndefClause) {
    ok_ = false;
    return false;
  }
  auto sweep = [&](std::vector<CRef>& list) {
    std::size_t j = 0;
    for (const CRef cref : list) {
      const Clause& c = arena_.deref(cref);
      bool satisfied = false;
      for (const Lit l : c.lits()) {
        if (value(l) == LBool::kTrue) {
          satisfied = true;
          break;
        }
      }
      if (satisfied && !locked(cref)) {
        remove_clause(cref);
      } else {
        list[j++] = cref;
      }
    }
    list.resize(j);
  };
  sweep(clauses_);
  sweep(learnts_);
  if (arena_.wasted() * 2 > arena_.size()) garbage_collect();
  return true;
}

bool Solver::budget_exhausted() const {
  if (stop_ != nullptr && stop_->load(std::memory_order_relaxed)) {
    return true;
  }
  if (conflict_budget_ >= 0 &&
      static_cast<std::int64_t>(stats_.conflicts) >= conflict_budget_) {
    return true;
  }
  return deadline_ != 0.0 && now_seconds() >= deadline_;
}

LBool Solver::search(std::int64_t conflicts_before_restart) {
  std::int64_t conflict_count = 0;
  std::vector<Lit> learnt_clause;
  // Sampled once per restart: one relaxed load, no clock reads when off.
  const bool timed = obs::phase_timing();

  for (;;) {
    CRef confl;
    if (timed) {
      const std::uint64_t t0 = obs::monotonic_ns();
      confl = propagate();
      stats_.propagate_seconds +=
          static_cast<double>(obs::monotonic_ns() - t0) * 1e-9;
    } else {
      confl = propagate();
    }
    if (confl != kUndefClause) {
      ++stats_.conflicts;
      ++conflict_count;
      if (audit_period > 0 &&
          stats_.conflicts % static_cast<std::uint64_t>(audit_period) == 0) {
        std::vector<std::string> violations;
        if (!audit(&violations)) {
          throw std::logic_error("solver invariant violated: " +
                                 violations.front());
        }
      }
      if (decision_level() == 0) {
        // Top-level conflict: the formula itself is unsatisfiable.
        if (proof_) proof_->add_lemma({});
        ok_ = false;
        conflict_core_.clear();
        return LBool::kFalse;
      }

      std::int32_t backtrack_level = 0;
      std::uint32_t lbd = 0;
      if (timed) {
        const std::uint64_t t0 = obs::monotonic_ns();
        analyze(confl, learnt_clause, backtrack_level, lbd);
        stats_.analyze_seconds +=
            static_cast<double>(obs::monotonic_ns() - t0) * 1e-9;
      } else {
        analyze(confl, learnt_clause, backtrack_level, lbd);
      }
      lbd_window_sum_ += lbd;
      ++lbd_window_count_;
      if (sample_interval > 0 &&
          stats_.conflicts % static_cast<std::uint64_t>(sample_interval) ==
              0) {
        emit_search_sample(/*final_sample=*/false);
      }
      if (arena_.deref(confl).theory()) arena_.free_clause(confl);
      cancel_until(backtrack_level);

      ++learnt_count_;
      if (test_corrupt_learnt != 0 && learnt_count_ == test_corrupt_learnt &&
          learnt_clause.size() >= 3) {
        // Fault injection: drop a literal so the clause (and its proof
        // line) is no longer implied — the checker must catch this.
        learnt_clause.pop_back();
      }
      if (proof_) proof_->add_lemma(learnt_clause);
      if (share_.export_clause) maybe_export(learnt_clause, lbd);
      if (learnt_clause.size() == 1) {
        unchecked_enqueue(learnt_clause[0], kUndefClause);
      } else {
        const CRef cref = arena_.alloc(learnt_clause, /*learnt=*/true);
        Clause& c = arena_.deref(cref);
        c.set_lbd(lbd);
        learnts_.push_back(cref);
        attach_clause(cref);
        cla_bump(c);
        unchecked_enqueue(learnt_clause[0], cref);
      }
      var_decay_all();
      cla_decay_all();
      if (--learntsize_adjust_cnt_ == 0) {
        learntsize_adjust_confl_ *= 1.5;
        learntsize_adjust_cnt_ =
            static_cast<int>(learntsize_adjust_confl_);
        max_learnts_ *= 1.1;
      }
    } else {
      if (conflict_count >= conflicts_before_restart || budget_exhausted()) {
        ++stats_.restarts;
        if (obs::trace_enabled() &&
            conflict_count >= conflicts_before_restart) {
          obs::TraceEvent("solver_restart")
              .num("restarts", stats_.restarts)
              .num("conflicts", stats_.conflicts)
              .num("learnts", num_learnts());
        }
        cancel_until(0);
        return LBool::kUndef;
      }
      if (static_cast<double>(learnts_.size()) -
              static_cast<double>(trail_.size()) >=
          max_learnts_) {
        if (timed) {
          const std::uint64_t t0 = obs::monotonic_ns();
          reduce_db();
          stats_.reduce_seconds +=
              static_cast<double>(obs::monotonic_ns() - t0) * 1e-9;
        } else {
          reduce_db();
        }
      }

      Lit next = kUndefLit;
      while (decision_level() <
             static_cast<std::int32_t>(assumptions_.size())) {
        const Lit p = assumptions_[decision_level()];
        if (value(p) == LBool::kTrue) {
          // Already satisfied; open a dummy decision level.
          trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
        } else if (value(p) == LBool::kFalse) {
          analyze_final(~p);
          // The conflict core (negated assumptions) is RUP with respect to
          // the logged DB: its derivation only resolves on reason clauses,
          // all of which are logged (inputs, lemmas, or theory lines).
          if (proof_) proof_->add_lemma(conflict_core_);
          return LBool::kFalse;
        } else {
          next = p;
          break;
        }
      }
      if (next == kUndefLit) {
        ++stats_.decisions;
        next = pick_branch_lit();
        if (next == kUndefLit) return LBool::kTrue;  // all vars assigned
      }
      trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
      unchecked_enqueue(next, kUndefClause);
    }
  }
}

void Solver::emit_search_sample(bool final_sample) {
  const std::uint64_t now = obs::monotonic_ns();
  const double dt = now > sample_last_ns_
                        ? static_cast<double>(now - sample_last_ns_) * 1e-9
                        : 0.0;
  const std::uint64_t dprops = stats_.propagations - sample_last_props_;
  const std::uint64_t dconf = stats_.conflicts - sample_last_conflicts_;
  const double props_per_sec =
      dt > 0.0 ? static_cast<double>(dprops) / dt : 0.0;
  const double conflicts_per_sec =
      dt > 0.0 ? static_cast<double>(dconf) / dt : 0.0;
  const double lbd_mean =
      lbd_window_count_ > 0
          ? static_cast<double>(lbd_window_sum_) /
                static_cast<double>(lbd_window_count_)
          : 0.0;
  const std::int64_t trail = static_cast<std::int64_t>(trail_.size());
  const std::int64_t learnts = num_learnts();

  if (obs::flight_enabled()) {
    obs::FlightNote("search_sample")
        .num("conflicts", stats_.conflicts)
        .num("restarts", stats_.restarts)
        .num("trail", trail)
        .num("learnts", learnts)
        .num("props_per_sec", props_per_sec)
        .num("conflicts_per_sec", conflicts_per_sec)
        .num("lbd_mean", lbd_mean);
  }
  if (obs::trace_enabled()) {
    obs::TraceEvent("search_sample")
        .num("conflicts", stats_.conflicts)
        .num("propagations", stats_.propagations)
        .num("decisions", stats_.decisions)
        .num("restarts", stats_.restarts)
        .num("trail", trail)
        .num("learnts", learnts)
        .num("props_per_sec", props_per_sec)
        .num("conflicts_per_sec", conflicts_per_sec)
        .num("lbd_mean", lbd_mean)
        .boolean("final", final_sample);
  }
  // Live gauges behind the service's `metrics` verb: last-writer-wins
  // across concurrent solvers, which is the intended "what is the search
  // doing right now" semantics.
  static const obs::Metric g_samples = obs::counter("sat.search_samples");
  static const obs::Metric g_trail = obs::gauge("sat.live.trail_depth");
  static const obs::Metric g_learnts = obs::gauge("sat.live.learnt_db");
  static const obs::Metric g_pps = obs::gauge("sat.live.props_per_sec");
  static const obs::Metric g_lbd = obs::gauge("sat.live.lbd_mean_x1000");
  obs::add(g_samples);
  obs::set(g_trail, trail);
  obs::set(g_learnts, learnts);
  obs::set(g_pps, static_cast<std::int64_t>(props_per_sec));
  obs::set(g_lbd, static_cast<std::int64_t>(lbd_mean * 1000.0));

  sample_last_ns_ = now;
  sample_last_props_ = stats_.propagations;
  sample_last_conflicts_ = stats_.conflicts;
  lbd_window_sum_ = 0;
  lbd_window_count_ = 0;
}

LBool Solver::solve(std::span<const Lit> assumptions, Budget budget) {
  model_.clear();
  conflict_core_.clear();
  if (!ok_) return LBool::kFalse;
  const SolverStats stats_before = stats_;
  sample_last_ns_ = obs::monotonic_ns();
  sample_last_props_ = stats_.propagations;
  sample_last_conflicts_ = stats_.conflicts;
  lbd_window_sum_ = 0;
  lbd_window_count_ = 0;

  assumptions_.assign(assumptions.begin(), assumptions.end());
  for (const Lit a : assumptions_) {
    // An assumption over an eliminated variable restores it (restore_var
    // also freezes); restoration can expose top-level UNSAT, which the
    // search loop below reports through maybe_inprocess()'s ok_ check.
    if (is_eliminated(a.var())) restore_var(a.var());
    // Assumed once -> may be assumed again; never eliminable from here on.
    frozen_[a.var()] = 1;
  }
  conflict_budget_ =
      budget.conflicts > 0
          ? static_cast<std::int64_t>(stats_.conflicts) + budget.conflicts
          : -1;
  deadline_ = budget.seconds > 0.0 ? now_seconds() + budget.seconds : 0.0;
  stop_ = budget.stop;

  if (max_learnts_ <= 0.0) {
    max_learnts_ =
        std::max(1000.0, static_cast<double>(clauses_.size()) *
                             learnt_size_factor);
  }

  LBool status = LBool::kUndef;
  for (std::uint64_t restart = 0; status == LBool::kUndef; ++restart) {
    // Restart boundary (decision level 0): drain the shared clause pool.
    // An import may expose top-level unsatisfiability of the shared
    // formula, which holds regardless of the assumptions.
    if (!import_shared()) {
      conflict_core_.clear();
      status = LBool::kFalse;
      break;
    }
    // Inprocess when the conflict schedule says so (the first iteration of
    // the first solve acts as a preprocessing pass). A pass may derive
    // top-level UNSAT, which holds regardless of the assumptions.
    if (!maybe_inprocess()) {
      conflict_core_.clear();
      status = LBool::kFalse;
      break;
    }
    status = search(static_cast<std::int64_t>(luby(restart)) * restart_base);
    if (status == LBool::kUndef && budget_exhausted()) break;
  }

  // Final trajectory sample (pre-backtrack, so the trail depth is the
  // search's, not the reset state's): an interrupted solve always leaves
  // its last search_sample in the flight ring for the post-mortem.
  if (sample_interval > 0 && stats_.conflicts > sample_last_conflicts_) {
    emit_search_sample(/*final_sample=*/true);
  }
  if (status == LBool::kTrue) {
    model_ = assigns_;
    extend_model();
  }
  cancel_until(0);
  assumptions_.clear();
  flush_solve_metrics(stats_before, stats_);
  sync_resource_usage();
  return status;
}

void Solver::sync_resource_usage() {
  // Arena sizes are in 32-bit words (clause.hpp); report bytes. Item
  // counts: total stored clauses for the arena, learnts split out so the
  // dashboard can show DB growth against the reduce-DB schedule.
  arena_res_.set(static_cast<std::int64_t>(arena_.size()) * 4,
                 num_clauses() + num_learnts());
  wasted_res_.set(static_cast<std::int64_t>(arena_.wasted()) * 4, 0);
  learnts_res_.set(0, num_learnts());
}

}  // namespace optalloc::sat

#pragma once
// Clause storage: all clauses (problem and learnt) live in one contiguous
// arena addressed by 32-bit references (CRef). This keeps the watch lists
// and reason array compact and makes relocation-based garbage collection of
// deleted learnt clauses possible.

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "sat/types.hpp"

namespace optalloc::sat {

/// Reference to a clause in the arena (word offset).
using CRef = std::uint32_t;
inline constexpr CRef kUndefClause = 0xFFFFFFFFu;

/// A clause embedded in the arena. Layout (32-bit words):
///   [0] size<<3 | theory<<2 | learnt<<1 | reloced
///   [1] activity (float, learnt only; 0 for problem clauses)
///   [2] LBD (learnt only)
///   [3..3+size) literals; word [3] doubles as the relocation target when
///   the `reloced` bit is set.
/// The `theory` bit marks reason/conflict clauses materialized on the fly
/// by theory propagators; the solver frees them eagerly when the implied
/// literal is unassigned.
class Clause {
 public:
  std::uint32_t size() const { return header_ >> 3; }
  bool theory() const { return header_ & 4u; }
  bool learnt() const { return header_ & 2u; }
  bool reloced() const { return header_ & 1u; }

  Lit& operator[](std::uint32_t i) { return lits_[i]; }
  Lit operator[](std::uint32_t i) const { return lits_[i]; }

  std::span<const Lit> lits() const { return {lits_, size()}; }

  float activity() const {
    float a;
    std::memcpy(&a, &act_, sizeof a);
    return a;
  }
  void set_activity(float a) { std::memcpy(&act_, &a, sizeof a); }

  std::uint32_t lbd() const { return lbd_; }
  void set_lbd(std::uint32_t lbd) { lbd_ = lbd; }

  /// Shrink the clause in place. Note: this only rewrites the header — it
  /// does not credit the dropped literal words to the arena's wasted
  /// count. In-arena callers must go through ClauseArena::shrink_clause,
  /// or the GC trigger undercounts garbage.
  void shrink(std::uint32_t new_size) {
    assert(new_size <= size());
    header_ = (new_size << 3) | (header_ & 7u);
  }

  void set_reloced(CRef target) {
    header_ |= 1u;
    lits_[0] = Lit::from_index(static_cast<std::int32_t>(target));
  }
  CRef relocation() const {
    return static_cast<CRef>(lits_[0].index());
  }

 private:
  friend class ClauseArena;
  std::uint32_t header_;
  std::uint32_t act_;
  std::uint32_t lbd_;
  Lit lits_[1];  // flexible array; actual length == size()
};

static_assert(sizeof(Lit) == sizeof(std::uint32_t));

/// Bump-allocating arena with explicit relocation GC.
class ClauseArena {
 public:
  /// Allocate a clause with the given literals.
  CRef alloc(std::span<const Lit> lits, bool learnt, bool theory = false) {
    assert(!lits.empty());
    const std::uint32_t need = 3 + static_cast<std::uint32_t>(lits.size());
    const CRef ref = static_cast<CRef>(mem_.size());
    mem_.resize(mem_.size() + need);
    Clause& c = deref(ref);
    c.header_ = (static_cast<std::uint32_t>(lits.size()) << 3) |
                (theory ? 4u : 0u) | (learnt ? 2u : 0u);
    c.set_activity(0.0f);
    c.lbd_ = 0;
    for (std::uint32_t i = 0; i < lits.size(); ++i) c.lits_[i] = lits[i];
    return ref;
  }

  Clause& deref(CRef r) {
    assert(r < mem_.size());
    return *reinterpret_cast<Clause*>(mem_.data() + r);
  }
  const Clause& deref(CRef r) const {
    assert(r < mem_.size());
    return *reinterpret_cast<const Clause*>(mem_.data() + r);
  }

  /// Mark a clause as freed; its words become wasted until the next GC.
  void free_clause(CRef r) { wasted_ += 3 + deref(r).size(); }

  /// Shrink a clause in place (strengthening), crediting the dropped
  /// literal words to `wasted_` so the GC trigger sees them. The caller
  /// must have moved the surviving literals to the front. Interacts
  /// consistently with free_clause/reloc, which both use the *current*
  /// size.
  void shrink_clause(CRef r, std::uint32_t new_size) {
    Clause& c = deref(r);
    assert(new_size >= 1 && new_size <= c.size());
    wasted_ += c.size() - new_size;
    c.shrink(new_size);
  }

  std::size_t size() const { return mem_.size(); }
  std::size_t wasted() const { return wasted_; }

  /// Move a live clause into `to`, leaving a forwarding pointer behind.
  /// Returns the new reference; idempotent for already-moved clauses.
  CRef reloc(CRef r, ClauseArena& to) {
    Clause& c = deref(r);
    if (c.reloced()) return c.relocation();
    const CRef nr = to.alloc(c.lits(), c.learnt(), c.theory());
    to.deref(nr).set_activity(c.activity());
    to.deref(nr).set_lbd(c.lbd());
    c.set_reloced(nr);
    return nr;
  }

  void swap(ClauseArena& other) {
    mem_.swap(other.mem_);
    std::swap(wasted_, other.wasted_);
  }

 private:
  std::vector<std::uint32_t> mem_;
  std::size_t wasted_ = 0;
};

}  // namespace optalloc::sat

#pragma once
// Inprocessing engine: clause-database simplification between restarts.
//
// A pass runs at a restart boundary (decision level 0) and applies, in
// order:
//   1. backward subsumption + self-subsuming resolution over the problem
//      clauses, with 64-bit variable signatures as a pre-filter;
//   2. vivification (distillation) of the highest-activity learnt
//      clauses: assert the negation of each literal in turn and shrink
//      the clause when propagation falsifies literals or closes it early;
//   3. bounded variable elimination (NiVER/SatELite style): resolve out
//      variables whose non-tautological resolvent count does not exceed
//      the occurrence count plus a growth cap, recording the removed
//      clauses on the solver's model-reconstruction stack.
//
// Certification: every clause the pass derives (resolvents, strengthened
// clauses) is RUP with respect to the clauses *currently live in the
// proof checker's database*, so each one is logged as a lemma BEFORE the
// clauses it was derived from are logged as deleted. With that ordering
// the existing drat_check pipeline verifies inprocessed proofs unchanged.
//
// Model reconstruction: eliminating v removes all clauses containing v;
// a model of the reduced formula is extended to the original one by
// replaying the smaller occurrence side off Solver::elim_stack_ backward
// (MiniSat SimpSolver layout — see Solver::extend_model).
//
// Interaction with GC: occurrence lists hold raw CRefs, so a pass never
// triggers arena relocation mid-flight; clauses deleted during the pass
// only accrue to wasted(). The pass finalizer rebuilds clauses_/learnts_
// from the surviving set and only then considers a compaction.
//
// Frozen variables (Solver::set_frozen) are never eliminated; they are
// the contract with every component that holds variable references
// across solves: theory propagators, assumption/bound guards, and the
// clause-sharing export range. Freezing is an optimization, not a safety
// requirement: an eliminated variable that reappears in a later
// add_clause or assumption is transparently restored (Solver::restore_var
// re-attaches the removed clauses — saved verbatim, their proof deletions
// never logged — and drops the variable's reconstruction entries), so
// incremental callers that froze nothing still get correct answers.

#include <cstdint>
#include <vector>

#include "sat/clause.hpp"
#include "sat/types.hpp"

namespace optalloc::sat {

class Solver;

/// Per-pass effort limits. Defaults are sized so a pass stays a small
/// fraction of search time even on the large table encodings; tests
/// loosen them to make specific rewrites deterministic.
struct InprocessLimits {
  /// Clauses longer than this are not used as subsumers (still checked as
  /// subsumees).
  std::uint32_t subsume_clause_max = 64;
  /// Variables with more occurrences (either polarity) than this are not
  /// variable-elimination candidates.
  std::uint32_t bve_occ_max = 16;
  /// Resolvents wider than this veto elimination of their variable.
  std::uint32_t bve_resolvent_max = 64;
  /// Elimination may not grow the clause count by more than this.
  std::int32_t bve_grow = 0;
  /// Vivify at most this many clauses per pass...
  std::uint32_t vivify_max_clauses = 128;
  /// ...none longer than this.
  std::uint32_t vivify_max_width = 64;
  /// Also vivify irredundant (problem) clauses, not just learnts. Off by
  /// default (the payoff is in learnts); tests use it for determinism.
  bool vivify_irredundant = false;
};

/// One inprocessing pass over a solver at decision level 0. Construct,
/// call run() once, discard. Scheduling (geometric conflict backoff)
/// lives in Solver::maybe_inprocess().
class Inprocessor {
 public:
  explicit Inprocessor(Solver& s, InprocessLimits limits = {});

  /// Execute the pass. Returns false iff top-level UNSAT was derived.
  /// Respects the solver's active budget/stop flag: an exhausted budget
  /// ends the pass early (every partial rewrite is already sound).
  bool run();

 private:
  struct ClsInfo {
    CRef cref;
    std::uint64_t sig;    ///< union of 1<<(var&63) over current literals
    std::uint32_t size;   ///< current literal count
    bool learnt;
    bool alive;
    bool in_queue;        ///< scheduled in the subsumption queue
  };

  // Pass stages.
  void build_occurrences();
  bool backward_subsume();
  bool vivify();
  bool eliminate_variables();
  void finalize();

  // Helpers.
  std::uint64_t signature(const Clause& c) const;
  bool clause_satisfied(const Clause& c) const;
  bool try_subsume(std::uint32_t didx, std::uint32_t sub_size);
  bool strengthen(std::uint32_t idx, Lit drop);
  bool apply_rewrite(std::uint32_t idx, const std::vector<Lit>& old_lits,
                     const std::vector<Lit>& new_lits, bool detached,
                     bool requeue);
  bool remove_info(std::uint32_t idx, bool log_delete = true);
  void save_for_restore(Var v, const std::vector<std::uint32_t>& side);
  void register_clause(CRef cref, bool learnt);
  bool gather_var_occurrences(Var v, std::vector<std::uint32_t>& pos,
                              std::vector<std::uint32_t>& neg,
                              std::vector<std::uint32_t>& learnt_occ);
  bool resolve(const Clause& p, const Clause& n, Var v,
               std::vector<Lit>& out);
  void push_reconstruction(Var v, const std::vector<std::uint32_t>& side,
                           Lit unit);
  bool attach_resolvent(const std::vector<Lit>& r,
                        std::vector<Lit>& pending_units);
  bool flush_units(std::vector<Lit>& pending_units);
  bool abort_requested() const;
  void emit_telemetry(double seconds, std::size_t wasted_before);

  Solver& s_;
  InprocessLimits limits_;

  std::vector<ClsInfo> infos_;
  std::vector<std::vector<std::uint32_t>> occ_;  ///< var -> info indices
  /// Clauses excluded from the pass but kept in the DB (satisfied/locked
  /// at level 0, theory reasons).
  std::vector<CRef> kept_clauses_;
  std::vector<CRef> kept_learnts_;
  /// Literal timestamps for O(1) membership during subsumption/resolution.
  std::vector<std::uint32_t> lit_stamp_;
  std::uint32_t stamp_ = 0;
  std::vector<std::uint32_t> subsume_queue_;

  // Pass counters (folded into SolverStats and obs at the end).
  std::uint64_t subsumed_ = 0;
  std::uint64_t strengthened_ = 0;
  std::uint64_t eliminated_ = 0;
};

}  // namespace optalloc::sat

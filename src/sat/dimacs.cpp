#include "sat/dimacs.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace optalloc::sat {

DimacsProblem parse_dimacs(std::istream& in) {
  DimacsProblem problem;
  std::int64_t declared_clauses = -1;
  std::string line;
  std::vector<Lit> current;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      std::istringstream header(line);
      std::string p, fmt;
      header >> p >> fmt >> problem.num_vars >> declared_clauses;
      if (fmt != "cnf" || !header) {
        throw std::runtime_error("dimacs: malformed problem line: " + line);
      }
      continue;
    }
    std::istringstream body(line);
    std::int64_t raw;
    while (body >> raw) {
      if (raw == 0) {
        problem.clauses.push_back(current);
        current.clear();
        continue;
      }
      const auto v = static_cast<Var>(std::abs(raw) - 1);
      if (v >= problem.num_vars) {
        throw std::runtime_error("dimacs: literal out of declared range");
      }
      current.push_back(Lit(v, raw < 0));
    }
  }
  if (!current.empty()) {
    throw std::runtime_error("dimacs: clause not terminated by 0");
  }
  if (declared_clauses >= 0 &&
      static_cast<std::int64_t>(problem.clauses.size()) != declared_clauses) {
    // Tolerate mismatched counts (common in the wild) — no error.
  }
  return problem;
}

bool load_into(const DimacsProblem& problem, Solver& solver) {
  while (solver.num_vars() < problem.num_vars) solver.new_var();
  bool ok = true;
  for (const auto& clause : problem.clauses) {
    ok = solver.add_clause(clause) && ok;
  }
  return solver.ok();
}

void write_dimacs(std::ostream& out, const DimacsProblem& problem) {
  out << "p cnf " << problem.num_vars << ' ' << problem.clauses.size()
      << '\n';
  for (const auto& clause : problem.clauses) {
    for (const Lit l : clause) {
      out << (l.sign() ? -(l.var() + 1) : (l.var() + 1)) << ' ';
    }
    out << "0\n";
  }
}

}  // namespace optalloc::sat

#pragma once
// Indexed binary max-heap over variables, ordered by VSIDS activity.
// Supports decrease/increase-key by variable index, which the plain
// std::priority_queue cannot do.

#include <cassert>
#include <cstdint>
#include <vector>

#include "sat/types.hpp"

namespace optalloc::sat {

class VarOrderHeap {
 public:
  explicit VarOrderHeap(const std::vector<double>& activity)
      : activity_(activity) {}

  bool empty() const { return heap_.empty(); }
  bool contains(Var v) const {
    return v < static_cast<Var>(pos_.size()) && pos_[v] >= 0;
  }

  void insert(Var v) {
    if (static_cast<std::size_t>(v) >= pos_.size()) pos_.resize(v + 1, -1);
    if (contains(v)) return;
    pos_[v] = static_cast<std::int32_t>(heap_.size());
    heap_.push_back(v);
    sift_up(pos_[v]);
  }

  Var pop() {
    assert(!empty());
    const Var top = heap_.front();
    heap_.front() = heap_.back();
    pos_[heap_.front()] = 0;
    heap_.pop_back();
    pos_[top] = -1;
    if (!heap_.empty()) sift_down(0);
    return top;
  }

  /// Restore heap order after v's activity increased.
  void increased(Var v) {
    if (contains(v)) sift_up(pos_[v]);
  }

  /// Rebuild after a global activity rescale (order unchanged, no-op) or
  /// to bulk-insert all decision variables.
  void build(const std::vector<Var>& vars) {
    for (Var v : heap_) pos_[v] = -1;
    heap_.clear();
    for (Var v : vars) {
      if (static_cast<std::size_t>(v) >= pos_.size()) pos_.resize(v + 1, -1);
      pos_[v] = static_cast<std::int32_t>(heap_.size());
      heap_.push_back(v);
    }
    for (std::int32_t i = static_cast<std::int32_t>(heap_.size()) / 2 - 1;
         i >= 0; --i)
      sift_down(i);
  }

 private:
  bool before(Var a, Var b) const { return activity_[a] > activity_[b]; }

  void sift_up(std::int32_t i) {
    const Var v = heap_[i];
    while (i > 0) {
      const std::int32_t p = (i - 1) >> 1;
      if (!before(v, heap_[p])) break;
      heap_[i] = heap_[p];
      pos_[heap_[i]] = i;
      i = p;
    }
    heap_[i] = v;
    pos_[v] = i;
  }

  void sift_down(std::int32_t i) {
    const Var v = heap_[i];
    const std::int32_t n = static_cast<std::int32_t>(heap_.size());
    while (2 * i + 1 < n) {
      std::int32_t child = 2 * i + 1;
      if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
      if (!before(heap_[child], v)) break;
      heap_[i] = heap_[child];
      pos_[heap_[i]] = i;
      i = child;
    }
    heap_[i] = v;
    pos_[v] = i;
  }

  const std::vector<double>& activity_;
  std::vector<Var> heap_;
  std::vector<std::int32_t> pos_;  // var -> heap index, -1 if absent
};

}  // namespace optalloc::sat

#include "sat/inprocess.hpp"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"

namespace optalloc::sat {

Inprocessor::Inprocessor(Solver& s, InprocessLimits limits)
    : s_(s), limits_(limits) {}

bool Inprocessor::run() {
  assert(s_.decision_level() == 0);
  const std::uint64_t t0 = obs::monotonic_ns();
  // Propagate pending units and shed satisfied clauses first, so the
  // occurrence lists are built over the surviving database only.
  if (!s_.simplify()) return false;
  const std::size_t wasted_before = s_.arena_.wasted();
  build_occurrences();
  bool alive = backward_subsume();
  if (alive) alive = vivify();
  if (alive) alive = eliminate_variables();
  // Freed words accrued by the pass itself (subsumed clauses, dropped
  // literals, deleted occurrence sides), measured before the finalizer's
  // compaction resets the arena's waste counter.
  const std::size_t words_freed = s_.arena_.wasted() - wasted_before;
  // Rebuild clauses_/learnts_ even on UNSAT or an aborted budget so the
  // lists never reference freed clauses (the invariant auditor and any
  // later GC walk them).
  finalize();
  emit_telemetry(static_cast<double>(obs::monotonic_ns() - t0) * 1e-9,
                 words_freed);
  return alive && s_.ok_;
}

std::uint64_t Inprocessor::signature(const Clause& c) const {
  std::uint64_t sig = 0;
  for (const Lit l : c.lits()) {
    sig |= std::uint64_t{1} << (static_cast<std::uint32_t>(l.var()) & 63u);
  }
  return sig;
}

bool Inprocessor::clause_satisfied(const Clause& c) const {
  for (const Lit l : c.lits()) {
    if (s_.value(l) == LBool::kTrue) return true;
  }
  return false;
}

bool Inprocessor::abort_requested() const { return s_.budget_exhausted(); }

void Inprocessor::build_occurrences() {
  const std::size_t nvars = static_cast<std::size_t>(s_.num_vars());
  occ_.assign(nvars, {});
  lit_stamp_.assign(2 * nvars, 0);
  stamp_ = 0;
  infos_.clear();
  kept_clauses_.clear();
  kept_learnts_.clear();
  auto scan = [&](const std::vector<CRef>& list, bool learnt) {
    for (const CRef cref : list) {
      const Clause& c = s_.arena_.deref(cref);
      // Satisfied clauses left by simplify() are locked reasons; theory
      // reasons are ephemeral. Both sit out the pass untouched.
      if (c.theory() || clause_satisfied(c)) {
        (learnt ? kept_learnts_ : kept_clauses_).push_back(cref);
        continue;
      }
      register_clause(cref, learnt);
    }
  };
  scan(s_.clauses_, /*learnt=*/false);
  scan(s_.learnts_, /*learnt=*/true);
}

void Inprocessor::register_clause(CRef cref, bool learnt) {
  const Clause& c = s_.arena_.deref(cref);
  const auto idx = static_cast<std::uint32_t>(infos_.size());
  infos_.push_back({cref, signature(c), c.size(), learnt, true, false});
  for (const Lit l : c.lits()) {
    occ_[static_cast<std::size_t>(l.var())].push_back(idx);
  }
}

bool Inprocessor::remove_info(std::uint32_t idx, bool log_delete) {
  ClsInfo& info = infos_[idx];
  if (!info.alive) return true;
  if (s_.locked(info.cref)) return true;  // reasons must stay alive
  info.alive = false;
  s_.remove_clause(info.cref, log_delete);  // detaches, frees
  return true;
}

// Rewrite the clause behind `idx` to `new_lits` (a strict subset of
// `old_lits`), logging the strengthened clause as a lemma *before* the
// deletion of its ancestor so the checker's live window always contains
// the clauses the lemma is RUP against. Returns false iff the rewrite
// collapsed to a top-level conflict.
bool Inprocessor::strengthen(std::uint32_t idx, Lit drop) {
  ClsInfo& info = infos_[idx];
  const CRef cref = info.cref;
  const Clause& c = s_.arena_.deref(cref);
  std::vector<Lit> old_lits(c.lits().begin(), c.lits().end());
  std::vector<Lit> new_lits;
  for (const Lit l : old_lits) {
    if (l == drop) continue;
    if (s_.value(l) == LBool::kTrue) return true;  // became satisfied: skip
    if (s_.value(l) == LBool::kFalse) continue;    // shed level-0 falses too
    new_lits.push_back(l);
  }
  return apply_rewrite(idx, old_lits, new_lits, /*detached=*/false,
                       /*requeue=*/true);
}

bool Inprocessor::apply_rewrite(std::uint32_t idx,
                                const std::vector<Lit>& old_lits,
                                const std::vector<Lit>& new_lits,
                                bool detached, bool requeue) {
  ClsInfo& info = infos_[idx];
  const CRef cref = info.cref;
  if (s_.proof_) {
    s_.proof_->add_lemma(new_lits);
    s_.proof_->add_delete(old_lits);
  }
  if (!detached) s_.detach_clause(cref);
  ++strengthened_;

  if (new_lits.empty()) {
    // Every literal fell away: top-level conflict (the empty lemma above
    // is RUP — all of old_lits are false under the checker's units).
    info.alive = false;
    s_.arena_.free_clause(cref);
    s_.ok_ = false;
    return false;
  }
  if (new_lits.size() == 1) {
    // The clause became a unit; it lives on the trail from here.
    info.alive = false;
    s_.arena_.free_clause(cref);
    assert(s_.value(new_lits[0]) == LBool::kUndef);
    s_.unchecked_enqueue(new_lits[0], kUndefClause);
    if (s_.propagate() != kUndefClause) {
      if (s_.proof_) s_.proof_->add_lemma({});
      s_.ok_ = false;
      return false;
    }
    return true;
  }

  Clause& c = s_.arena_.deref(cref);
  for (std::size_t i = 0; i < new_lits.size(); ++i) c[static_cast<std::uint32_t>(i)] = new_lits[i];
  s_.arena_.shrink_clause(cref, static_cast<std::uint32_t>(new_lits.size()));
  c.set_lbd(std::min<std::uint32_t>(
      c.lbd(), static_cast<std::uint32_t>(new_lits.size())));
  s_.attach_clause(cref);  // surviving literals are all unassigned
  info.size = static_cast<std::uint32_t>(new_lits.size());
  info.sig = signature(c);
  if (requeue && !info.learnt && !info.in_queue &&
      info.size <= limits_.subsume_clause_max) {
    info.in_queue = true;
    subsume_queue_.push_back(idx);
  }
  return true;
}

bool Inprocessor::try_subsume(std::uint32_t didx, std::uint32_t sub_size) {
  const ClsInfo& dinfo = infos_[didx];
  if (s_.locked(dinfo.cref)) return true;
  const Clause& d = s_.arena_.deref(dinfo.cref);
  if (clause_satisfied(d)) return true;
  // The subsumer C is stamped: count D's literals matching C exactly and
  // matching negated. Literal-distinctness makes the counts exact.
  std::uint32_t exact = 0;
  std::uint32_t flipped = 0;
  Lit flip_lit = kUndefLit;
  for (const Lit l : d.lits()) {
    if (lit_stamp_[static_cast<std::size_t>(l.index())] == stamp_) {
      ++exact;
    } else if (lit_stamp_[static_cast<std::size_t>((~l).index())] == stamp_) {
      ++flipped;
      flip_lit = l;
    }
  }
  if (exact == sub_size) {
    // C ⊆ D: D is redundant.
    ++subsumed_;
    return remove_info(didx);
  }
  if (exact + 1 == sub_size && flipped == 1) {
    // Self-subsuming resolution: C ⊗ D on flip_lit's variable yields
    // D \ {flip_lit} — strengthen D in place.
    return strengthen(didx, flip_lit);
  }
  return true;
}

bool Inprocessor::backward_subsume() {
  subsume_queue_.clear();
  for (std::uint32_t i = 0; i < infos_.size(); ++i) {
    if (!infos_[i].learnt && infos_[i].size <= limits_.subsume_clause_max) {
      infos_[i].in_queue = true;
      subsume_queue_.push_back(i);
    }
  }
  for (std::size_t qi = 0; qi < subsume_queue_.size(); ++qi) {
    if ((qi & 63u) == 0 && abort_requested()) return true;
    const std::uint32_t idx = subsume_queue_[qi];
    infos_[idx].in_queue = false;
    if (!infos_[idx].alive) continue;
    const Clause& c = s_.arena_.deref(infos_[idx].cref);
    if (clause_satisfied(c)) continue;
    // Candidates are every clause containing C's least-occupied variable.
    Var best = c[0].var();
    for (const Lit l : c.lits()) {
      if (occ_[static_cast<std::size_t>(l.var())].size() <
          occ_[static_cast<std::size_t>(best)].size()) {
        best = l.var();
      }
    }
    ++stamp_;
    for (const Lit l : c.lits()) {
      lit_stamp_[static_cast<std::size_t>(l.index())] = stamp_;
    }
    const std::uint32_t csize = infos_[idx].size;
    const std::uint64_t csig = infos_[idx].sig;
    auto& olist = occ_[static_cast<std::size_t>(best)];
    std::size_t w = 0;
    bool early_out = false;
    for (std::size_t oi = 0; oi < olist.size(); ++oi) {
      const std::uint32_t didx = olist[oi];
      if (!infos_[didx].alive) continue;  // compact dead entries away
      const Clause& d = s_.arena_.deref(infos_[didx].cref);
      bool has_best = false;
      for (const Lit l : d.lits()) {
        if (l.var() == best) {
          has_best = true;
          break;
        }
      }
      if (!has_best) continue;  // stale after strengthening
      olist[w++] = didx;
      if (didx == idx) continue;
      if (infos_[didx].size < csize) continue;
      if ((csig & ~infos_[didx].sig) != 0) continue;  // signature pre-filter
      if (!try_subsume(didx, csize)) return false;    // top-level UNSAT
      if (!infos_[idx].alive) {
        early_out = true;
        break;
      }
    }
    if (!early_out) olist.resize(w);
  }
  return true;
}

bool Inprocessor::vivify() {
  // Candidates: the highest-activity learnts (plus, when configured, the
  // problem clauses in DB order — their activity is uniformly zero).
  std::vector<std::uint32_t> cands;
  for (std::uint32_t i = 0; i < infos_.size(); ++i) {
    const ClsInfo& info = infos_[i];
    if (!info.alive) continue;
    if (!info.learnt && !limits_.vivify_irredundant) continue;
    if (info.size >= 3 && info.size <= limits_.vivify_max_width) {
      cands.push_back(i);
    }
  }
  std::stable_sort(cands.begin(), cands.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return s_.arena_.deref(infos_[a].cref).activity() >
                            s_.arena_.deref(infos_[b].cref).activity();
                   });
  if (cands.size() > limits_.vivify_max_clauses) {
    cands.resize(limits_.vivify_max_clauses);
  }

  std::vector<Lit> orig;
  std::vector<Lit> kept;
  for (const std::uint32_t idx : cands) {
    if (abort_requested()) return true;
    if (!infos_[idx].alive) continue;
    const CRef cref = infos_[idx].cref;
    {
      const Clause& c = s_.arena_.deref(cref);
      if (clause_satisfied(c) || s_.locked(cref)) continue;
      orig.assign(c.lits().begin(), c.lits().end());
    }
    // Probe the clause detached, so its own watches cannot "help" the
    // propagation that is supposed to prove it redundant.
    s_.detach_clause(cref);
    kept.clear();
    bool shortened = false;
    bool done = false;
    for (std::size_t i = 0; i < orig.size() && !done; ++i) {
      const Lit l = orig[i];
      const LBool v = s_.value(l);
      if (v == LBool::kTrue) {
        // Earlier probes already imply l: the clause holds without its
        // remaining literals.
        kept.push_back(l);
        shortened = shortened || (i + 1 < orig.size());
        done = true;
      } else if (v == LBool::kFalse) {
        // Earlier probes (or level-0 units) falsify l: drop it.
        shortened = true;
      } else {
        s_.trail_lim_.push_back(static_cast<std::int32_t>(s_.trail_.size()));
        s_.unchecked_enqueue(~l, kUndefClause);
        kept.push_back(l);
        const CRef confl = s_.propagate();
        if (confl != kUndefClause) {
          if (s_.arena_.deref(confl).theory()) s_.arena_.free_clause(confl);
          shortened = shortened || (i + 1 < orig.size());
          done = true;
        }
      }
    }
    s_.cancel_until(0);
    if (!shortened) {
      s_.attach_clause(cref);  // unchanged, original watches restored
      continue;
    }
    // kept ⊊ orig is RUP: asserting ¬kept replays the probe propagations
    // in the checker, which still holds the original clause at this point
    // in the log (the rewrite deletes it only after the lemma).
    if (!apply_rewrite(idx, orig, kept, /*detached=*/true,
                       /*requeue=*/false)) {
      return false;
    }
  }
  return true;
}

bool Inprocessor::gather_var_occurrences(Var v, std::vector<std::uint32_t>& pos,
                                         std::vector<std::uint32_t>& neg,
                                         std::vector<std::uint32_t>& learnt_occ) {
  pos.clear();
  neg.clear();
  learnt_occ.clear();
  auto& olist = occ_[static_cast<std::size_t>(v)];
  std::size_t w = 0;
  bool usable = true;
  for (const std::uint32_t idx : olist) {
    if (!infos_[idx].alive) continue;
    const Clause& c = s_.arena_.deref(infos_[idx].cref);
    Lit vlit = kUndefLit;
    for (const Lit l : c.lits()) {
      if (l.var() == v) {
        vlit = l;
        break;
      }
    }
    if (vlit == kUndefLit) continue;  // stale after strengthening
    if (clause_satisfied(c)) {
      if (s_.locked(infos_[idx].cref)) {
        // Should be impossible while v is unassigned; refuse defensively.
        olist[w++] = idx;
        usable = false;
      } else {
        remove_info(idx);  // redundant under a level-0 unit
      }
      continue;
    }
    olist[w++] = idx;
    if (infos_[idx].learnt) {
      learnt_occ.push_back(idx);
    } else if (vlit.sign()) {
      neg.push_back(idx);
    } else {
      pos.push_back(idx);
    }
  }
  olist.resize(w);
  return usable;
}

bool Inprocessor::resolve(const Clause& p, const Clause& n, Var v,
                          std::vector<Lit>& out) {
  out.clear();
  ++stamp_;
  for (const Lit l : p.lits()) {
    if (l.var() == v) continue;
    if (s_.value(l) == LBool::kTrue) return false;  // entailed by a unit
    if (s_.value(l) == LBool::kFalse) continue;
    lit_stamp_[static_cast<std::size_t>(l.index())] = stamp_;
    out.push_back(l);
  }
  for (const Lit l : n.lits()) {
    if (l.var() == v) continue;
    if (lit_stamp_[static_cast<std::size_t>((~l).index())] == stamp_) {
      return false;  // tautological resolvent
    }
    if (lit_stamp_[static_cast<std::size_t>(l.index())] == stamp_) continue;
    if (s_.value(l) == LBool::kTrue) return false;
    if (s_.value(l) == LBool::kFalse) continue;
    lit_stamp_[static_cast<std::size_t>(l.index())] = stamp_;
    out.push_back(l);
  }
  return true;
}

void Inprocessor::push_reconstruction(Var v,
                                      const std::vector<std::uint32_t>& side,
                                      Lit unit) {
  auto& st = s_.elim_stack_;
  for (const std::uint32_t idx : side) {
    const Clause& c = s_.arena_.deref(infos_[idx].cref);
    const std::size_t start = st.size();
    st.push_back(0);  // slot for the eliminated literal (placed first)
    for (const Lit l : c.lits()) {
      if (l.var() == v) {
        st[start] = static_cast<std::uint32_t>(l.index());
      } else {
        st.push_back(static_cast<std::uint32_t>(l.index()));
      }
    }
    st.push_back(c.size());
  }
  // The default-value unit goes last: extend_model() walks backward, so
  // it fires first and the stored clauses override it only when forced.
  st.push_back(static_cast<std::uint32_t>(unit.index()));
  st.push_back(1u);
}

void Inprocessor::save_for_restore(Var v,
                                   const std::vector<std::uint32_t>& side) {
  for (const std::uint32_t idx : side) {
    const Clause& c = s_.arena_.deref(infos_[idx].cref);
    s_.elim_saved_.push_back(
        {v, std::vector<Lit>(c.lits().begin(), c.lits().end())});
  }
}

bool Inprocessor::attach_resolvent(const std::vector<Lit>& r,
                                   std::vector<Lit>& pending_units) {
  if (s_.proof_) s_.proof_->add_lemma(r);
  if (r.empty()) {
    s_.ok_ = false;
    return false;
  }
  if (r.size() == 1) {
    // Deferred: enqueueing now could lock a parent clause we are about to
    // delete.
    pending_units.push_back(r[0]);
    return true;
  }
  const CRef cref = s_.arena_.alloc(r, /*learnt=*/false);
  s_.attach_clause(cref);
  register_clause(cref, /*learnt=*/false);
  return true;
}

bool Inprocessor::flush_units(std::vector<Lit>& pending_units) {
  for (const Lit u : pending_units) {
    if (s_.value(u) == LBool::kTrue) continue;
    if (s_.value(u) == LBool::kFalse) {
      if (s_.proof_) s_.proof_->add_lemma({});
      s_.ok_ = false;
      return false;
    }
    s_.unchecked_enqueue(u, kUndefClause);
  }
  pending_units.clear();
  if (s_.propagate() != kUndefClause) {
    if (s_.proof_) s_.proof_->add_lemma({});
    s_.ok_ = false;
    return false;
  }
  return true;
}

bool Inprocessor::eliminate_variables() {
  std::vector<std::uint32_t> pos;
  std::vector<std::uint32_t> neg;
  std::vector<std::uint32_t> learnt_occ;
  std::vector<std::vector<Lit>> resolvents;
  std::vector<Lit> resolvent;
  std::vector<Lit> pending_units;
  const std::int32_t nvars = s_.num_vars();
  for (Var v = 0; v < nvars; ++v) {
    if ((v & 31) == 0 && abort_requested()) return true;
    if (s_.value(v) != LBool::kUndef || s_.frozen_[static_cast<std::size_t>(v)] != 0 ||
        s_.eliminated_[static_cast<std::size_t>(v)] != 0) {
      continue;
    }
    if (!gather_var_occurrences(v, pos, neg, learnt_occ)) continue;
    if (pos.empty() && neg.empty()) continue;  // only learnt occurrences:
    // eliminating on learnts alone is unsound (they are consequences, not
    // definitions), and an unconstrained var needs no elimination.
    if (pos.size() > limits_.bve_occ_max || neg.size() > limits_.bve_occ_max) {
      continue;
    }

    // Dry run: count non-redundant resolvents against the growth cap.
    resolvents.clear();
    const std::size_t cap =
        pos.size() + neg.size() + static_cast<std::size_t>(limits_.bve_grow);
    bool vetoed = false;
    for (const std::uint32_t pi : pos) {
      for (const std::uint32_t ni : neg) {
        if (!resolve(s_.arena_.deref(infos_[pi].cref),
                     s_.arena_.deref(infos_[ni].cref), v, resolvent)) {
          continue;  // tautological or already entailed
        }
        if (resolvent.empty()) {
          // All resolvent literals are false at level 0: UNSAT.
          if (s_.proof_) s_.proof_->add_lemma({});
          s_.ok_ = false;
          return false;
        }
        if (resolvent.size() > limits_.bve_resolvent_max) {
          vetoed = true;
          break;
        }
        resolvents.push_back(resolvent);
        if (resolvents.size() > cap) {
          vetoed = true;
          break;
        }
      }
      if (vetoed) break;
    }
    if (vetoed) continue;

    // Commit. Order matters for the proof: resolvent lemmas are logged
    // while both occurrence sides are still live in the checker's window;
    // only then are the sides deleted.
    const bool store_neg = pos.size() > neg.size();
    push_reconstruction(v, store_neg ? neg : pos,
                        store_neg ? Lit(v, false) : Lit(v, true));
    // Both occurrence sides are saved verbatim so a later reuse of v can
    // restore them, and their deletions stay unlogged (log_delete=false)
    // so they remain live in the RUP checker — see Solver::restore_var.
    // Removed learnts are neither saved nor kept live: dropping a learnt
    // is always sound.
    save_for_restore(v, pos);
    save_for_restore(v, neg);
    pending_units.clear();
    for (const auto& r : resolvents) {
      if (!attach_resolvent(r, pending_units)) return false;
    }
    for (const std::uint32_t idx : pos) remove_info(idx, /*log_delete=*/false);
    for (const std::uint32_t idx : neg) remove_info(idx, /*log_delete=*/false);
    for (const std::uint32_t idx : learnt_occ) remove_info(idx);
    s_.eliminated_[static_cast<std::size_t>(v)] = 1;
    s_.decision_[static_cast<std::size_t>(v)] = 0;
    ++eliminated_;
    if (!flush_units(pending_units)) return false;
  }
  return true;
}

void Inprocessor::finalize() {
  std::vector<CRef> cls = std::move(kept_clauses_);
  std::vector<CRef> lrn = std::move(kept_learnts_);
  for (const ClsInfo& info : infos_) {
    if (!info.alive) continue;
    (info.learnt ? lrn : cls).push_back(info.cref);
  }
  s_.clauses_ = std::move(cls);
  s_.learnts_ = std::move(lrn);
  occ_.clear();
  infos_.clear();
  // Occurrence lists are gone; compacting the arena is safe again.
  if (s_.arena_.wasted() * 2 > s_.arena_.size()) s_.garbage_collect();
}

void Inprocessor::emit_telemetry(double seconds, std::size_t words_freed) {
  s_.stats_.inprocess_passes += 1;
  s_.stats_.subsumed_clauses += subsumed_;
  s_.stats_.strengthened_clauses += strengthened_;
  s_.stats_.eliminated_vars += eliminated_;
  s_.stats_.inprocess_reclaimed_words += words_freed;

  static const obs::Metric passes = obs::counter("sat.inprocess.passes");
  static const obs::Metric subsumed = obs::counter("sat.inprocess.subsumed");
  static const obs::Metric strengthened =
      obs::counter("sat.inprocess.strengthened");
  static const obs::Metric eliminated =
      obs::counter("sat.inprocess.eliminated_vars");
  static const obs::Metric reclaimed =
      obs::counter("sat.inprocess.reclaimed_words");
  obs::add(passes, 1);
  obs::add(subsumed, static_cast<std::int64_t>(subsumed_));
  obs::add(strengthened, static_cast<std::int64_t>(strengthened_));
  obs::add(eliminated, static_cast<std::int64_t>(eliminated_));
  obs::add(reclaimed, static_cast<std::int64_t>(words_freed));

  obs::FlightNote("inprocess_pass")
      .num("subsumed", static_cast<std::int64_t>(subsumed_))
      .num("strengthened", static_cast<std::int64_t>(strengthened_))
      .num("eliminated", static_cast<std::int64_t>(eliminated_))
      .num("reclaimed_words", static_cast<std::int64_t>(words_freed))
      .num("seconds", seconds);
  if (obs::trace_enabled()) {
    obs::TraceEvent("inprocess_pass")
        .num("subsumed", static_cast<std::int64_t>(subsumed_))
        .num("strengthened", static_cast<std::int64_t>(strengthened_))
        .num("eliminated", static_cast<std::int64_t>(eliminated_))
        .num("reclaimed_words", static_cast<std::int64_t>(words_freed))
        .num("seconds", seconds);
  }
}

// --- Solver-side scheduling and model reconstruction ---------------------

bool Solver::maybe_inprocess() {
  if (!inprocess || !ok_) return ok_;
  if (static_cast<std::int64_t>(stats_.conflicts) < inprocess_next_) {
    return ok_;
  }
  if (inprocess_backoff_ <= 0) {
    inprocess_backoff_ = std::max<std::int64_t>(1, inprocess_interval);
  }
  Inprocessor pass(*this);
  const bool alive = pass.run();
  // Geometric backoff: each pass doubles the conflict distance to the
  // next one, so simplification cost stays a vanishing fraction of search.
  inprocess_next_ =
      static_cast<std::int64_t>(stats_.conflicts) + inprocess_backoff_;
  inprocess_backoff_ *= 2;
  return alive;
}

void Solver::restore_var(Var v) {
  // Incremental inprocessing (Fazekas/Biere/Scholl): an eliminated
  // variable reappearing in an add_clause or assumption gets its removed
  // clauses re-attached and its reconstruction entries dropped, after
  // which it behaves as if it had never been eliminated. Proof-wise this
  // is free: the removed clauses' deletions were never logged, so the
  // RUP checker has had them live all along.
  assert(decision_level() == 0);
  if (eliminated_[static_cast<std::size_t>(v)] == 0) return;
  eliminated_[static_cast<std::size_t>(v)] = 0;
  // Reused once -> externally referenced forever: freeze so no later pass
  // eliminates it again (also breaks restore/eliminate thrash).
  frozen_[static_cast<std::size_t>(v)] = 1;
  decision_[static_cast<std::size_t>(v)] = 1;
  if (assigns_[static_cast<std::size_t>(v)] == LBool::kUndef) order_.insert(v);
  ++stats_.restored_vars;

  // Drop v's groups from the reconstruction stack. Groups of *other*
  // variables are untouched: a variable eliminated after v never stored a
  // clause mentioning v (v had no occurrences left), and earlier groups
  // that do mention v simply read its model value like any live variable.
  {
    std::vector<std::pair<std::size_t, std::size_t>> keep;  // [first, end)
    for (std::size_t i = elim_stack_.size(); i > 0;) {
      const std::uint32_t size = elim_stack_[--i];
      const std::size_t first = i - size;
      const Lit l0 =
          Lit::from_index(static_cast<std::int32_t>(elim_stack_[first]));
      if (l0.var() != v) keep.emplace_back(first, i + 1);
      i = first;
    }
    std::vector<std::uint32_t> rebuilt;
    rebuilt.reserve(elim_stack_.size());
    for (std::size_t k = keep.size(); k-- > 0;) {
      rebuilt.insert(rebuilt.end(),
                     elim_stack_.begin() +
                         static_cast<std::ptrdiff_t>(keep[k].first),
                     elim_stack_.begin() +
                         static_cast<std::ptrdiff_t>(keep[k].second));
    }
    elim_stack_ = std::move(rebuilt);
  }

  // Re-attach the saved clauses. add_clause_impl restores any *other*
  // still-eliminated variable they mention first (the cascade terminates:
  // every step clears one eliminated flag), re-normalizes against the
  // current level-0 trail, and may derive top-level UNSAT — all without
  // proof logging, since the checker never saw these clauses leave.
  std::vector<std::vector<Lit>> mine;
  for (std::size_t i = 0; i < elim_saved_.size();) {
    if (elim_saved_[i].v == v) {
      mine.push_back(std::move(elim_saved_[i].lits));
      elim_saved_[i] = std::move(elim_saved_.back());
      elim_saved_.pop_back();
    } else {
      ++i;
    }
  }
  for (const std::vector<Lit>& cl : mine) {
    if (!add_clause_impl(cl, /*theory=*/false, /*log_input=*/false)) return;
  }
}

void Solver::extend_model() {
  // Replay the elimination stack backward (MiniSat SimpSolver layout:
  // [lits... , size] per stored clause, eliminated literal first). A
  // variable's default-value unit was pushed last, so it fires first;
  // each stored clause whose other literals are all false then forces the
  // eliminated literal true.
  for (std::size_t i = elim_stack_.size(); i > 0;) {
    const std::uint32_t size = elim_stack_[--i];
    const std::size_t first = i - size;
    bool satisfied = false;
    for (std::size_t j = first + 1; j < i; ++j) {
      const Lit l = Lit::from_index(static_cast<std::int32_t>(elim_stack_[j]));
      if (model_value(l) != LBool::kFalse) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) {
      const Lit l0 =
          Lit::from_index(static_cast<std::int32_t>(elim_stack_[first]));
      model_[l0.var()] = to_lbool(!l0.sign());
    }
    i = first;
  }
}

}  // namespace optalloc::sat

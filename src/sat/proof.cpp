#include "sat/proof.hpp"

#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace optalloc::sat {
namespace {

// DIMACS convention: variable v -> v+1, negative literal -> negative int.
long long to_dimacs(Lit l) {
  const long long v = l.var() + 1;
  return l.sign() ? -v : v;
}

Lit from_dimacs(long long d) {
  const Var v = static_cast<Var>(d < 0 ? -d : d) - 1;
  return Lit(v, /*sign=*/d < 0);
}

}  // namespace

void ProofLog::push(ProofStepKind kind, std::span<const Lit> lits) {
  ProofStep s;
  s.kind = kind;
  s.begin = static_cast<std::uint32_t>(pool_.size());
  pool_.insert(pool_.end(), lits.begin(), lits.end());
  s.end = static_cast<std::uint32_t>(pool_.size());
  steps_.push_back(s);
  if (kind == ProofStepKind::kLemma) ++num_lemmas_;
}

void ProofLog::add_pb_ge(std::span<const ProofPbTerm> terms, std::int64_t rhs) {
  ProofPbConstraint c;
  c.terms.assign(terms.begin(), terms.end());
  c.rhs = rhs;
  pb_.push_back(std::move(c));
}

void ProofLog::write_text(std::ostream& os) const {
  // PB axioms first: the checker needs them before any `t` line, and the
  // solver registers them all before search starts anyway.
  for (const ProofPbConstraint& c : pb_) {
    os << "p " << c.rhs;
    for (const ProofPbTerm& t : c.terms) {
      os << ' ' << t.coef << ' ' << to_dimacs(t.lit);
    }
    os << " 0\n";
  }
  for (const ProofStep& s : steps_) {
    switch (s.kind) {
      case ProofStepKind::kInput:
        os << "i";
        break;
      case ProofStepKind::kTheory:
        os << "t";
        break;
      case ProofStepKind::kLemma:
        break;
      case ProofStepKind::kDelete:
        os << "d";
        break;
    }
    bool first = s.kind == ProofStepKind::kLemma;
    for (const Lit l : lits(s)) {
      if (!first) os << ' ';
      first = false;
      os << to_dimacs(l);
    }
    if (!first) os << ' ';
    os << "0\n";
  }
}

bool ProofLog::parse_text(std::istream& is, std::string* error) {
  auto fail = [&](const std::string& msg, std::size_t line) {
    if (error) {
      *error = "proof line " + std::to_string(line) + ": " + msg;
    }
    return false;
  };
  std::string line;
  std::size_t lineno = 0;
  std::vector<Lit> lits;
  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    ls >> std::ws;
    if (ls.eof()) continue;
    const int head = ls.peek();
    if (head == 'c') continue;  // comment
    ProofStepKind kind = ProofStepKind::kLemma;
    bool is_pb = false;
    if (head == 'i' || head == 't' || head == 'd' || head == 'p') {
      ls.get();
      is_pb = head == 'p';
      kind = head == 'i'   ? ProofStepKind::kInput
             : head == 't' ? ProofStepKind::kTheory
                           : ProofStepKind::kDelete;
    }
    if (is_pb) {
      ProofPbConstraint c;
      if (!(ls >> c.rhs)) return fail("missing rhs on p line", lineno);
      long long coef = 0;
      while (ls >> coef) {
        if (coef == 0) break;
        long long d = 0;
        if (!(ls >> d) || d == 0) {
          return fail("truncated term on p line", lineno);
        }
        c.terms.push_back({coef, from_dimacs(d)});
      }
      if (coef != 0) return fail("p line not 0-terminated", lineno);
      pb_.push_back(std::move(c));
      continue;
    }
    lits.clear();
    long long d = 0;
    bool terminated = false;
    while (ls >> d) {
      if (d == 0) {
        terminated = true;
        break;
      }
      lits.push_back(from_dimacs(d));
    }
    if (!terminated) return fail("clause line not 0-terminated", lineno);
    push(kind, lits);
  }
  return true;
}

}  // namespace optalloc::sat

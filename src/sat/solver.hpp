#pragma once
// CDCL SAT solver in the MiniSat/Glucose lineage: two-watched-literal
// propagation, VSIDS branching with phase saving, first-UIP conflict
// analysis with recursive clause minimization, Luby restarts, activity/LBD
// based learnt-clause deletion, incremental solving under assumptions, and
// a hook for external theory propagators (used by the pseudo-Boolean layer,
// mirroring the role of GOBLIN in the paper).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/resource.hpp"
#include "sat/clause.hpp"
#include "sat/heap.hpp"
#include "sat/types.hpp"
#include "util/rng.hpp"

namespace optalloc::sat {

class ProofLog;
class Solver;

/// Theory-propagator interface. A propagator watches assignments and may
/// enqueue implied literals (with a materialized reason clause) or report a
/// conflict (as a falsified clause). The pseudo-Boolean layer implements
/// this to get GOBLIN-style native 0-1 linear constraint propagation.
class Propagator {
 public:
  virtual ~Propagator() = default;

  /// A new variable was created; size internal tables.
  virtual void on_new_var(Var v) = 0;

  /// Literal `l` became true. Return false on conflict, filling `conflict`
  /// with a clause whose literals are all false under the current trail.
  /// May imply further literals via Solver::theory_enqueue().
  virtual bool on_assign(Lit l, std::vector<Lit>& conflict) = 0;

  /// Literal `l` is being unassigned during backtracking.
  virtual void on_unassign(Lit l) = 0;
};

/// Resource limits for a single solve() call. Zero means unlimited.
/// `stop` is an optional cooperative-cancellation flag (used by the
/// parallel portfolio optimizer): the solve returns kUndef soon after it
/// becomes true.
struct Budget {
  std::int64_t conflicts = 0;
  double seconds = 0.0;
  const std::atomic<bool>* stop = nullptr;
};

/// One clause crossing solver boundaries through the sharing hooks (see
/// src/par for the pool that carries them between portfolio workers).
struct SharedClause {
  std::vector<Lit> lits;
  std::uint32_t lbd = 0;
};

struct SolverStats {
  /// Literal occurrences across all added problem clauses — the "Lit."
  /// column of the paper's result tables.
  std::uint64_t added_literals = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_literals = 0;
  std::uint64_t minimized_literals = 0;
  std::uint64_t removed_clauses = 0;
  std::uint64_t theory_propagations = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t random_decisions = 0;
  /// Inprocessing (subsumption / self-subsuming resolution, vivification,
  /// bounded variable elimination; see sat/inprocess.hpp).
  std::uint64_t inprocess_passes = 0;
  std::uint64_t subsumed_clauses = 0;
  std::uint64_t strengthened_clauses = 0;
  std::uint64_t eliminated_vars = 0;
  std::uint64_t restored_vars = 0;
  std::uint64_t inprocess_reclaimed_words = 0;
  /// Clause-exchange traffic (cooperative portfolio only).
  std::uint64_t clauses_exported = 0;
  std::uint64_t clauses_imported = 0;
  /// Phase wall-times. Only accumulated while obs::phase_timing() is on
  /// (e.g. --stats); otherwise the search loop takes no clock readings.
  double propagate_seconds = 0.0;
  double analyze_seconds = 0.0;
  double reduce_seconds = 0.0;
};

class Solver {
 public:
  Solver();

  // --- Problem construction -------------------------------------------

  /// Create a fresh variable and return it. `decision` controls whether the
  /// branching heuristic may pick it.
  Var new_var(bool decision = true);
  std::int32_t num_vars() const { return static_cast<std::int32_t>(assigns_.size()); }
  std::int64_t num_clauses() const { return static_cast<std::int64_t>(clauses_.size()); }
  std::int64_t num_learnts() const { return static_cast<std::int64_t>(learnts_.size()); }

  /// Add a clause (over existing variables). Returns false if the formula
  /// became trivially unsatisfiable. Must be called at decision level 0.
  bool add_clause(std::span<const Lit> lits);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
  }
  bool add_unit(Lit l) { return add_clause({l}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  /// Add a clause derived by a theory propagator at level 0 (e.g. a unit
  /// implied by a pseudo-Boolean constraint during construction). Behaves
  /// like add_clause but is proof-logged as a theory lemma (`t` line) —
  /// the proof checker verifies it against the registered PB axioms rather
  /// than trusting it as input.
  bool add_theory_clause(std::span<const Lit> lits);
  bool add_theory_clause(std::initializer_list<Lit> lits) {
    return add_theory_clause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// Attach a theory propagator. The solver does not own it. Must be done
  /// before any solving; multiple propagators are invoked in order.
  void attach_propagator(Propagator* p) { propagators_.push_back(p); }

  // --- Solving ----------------------------------------------------------

  /// Solve under the given assumptions. kTrue = SAT (model available),
  /// kFalse = UNSAT (conflict core available), kUndef = budget exhausted.
  LBool solve(std::span<const Lit> assumptions = {}, Budget budget = {});
  LBool solve(std::initializer_list<Lit> assumptions, Budget budget = {}) {
    return solve(std::span<const Lit>(assumptions.begin(), assumptions.size()),
                 budget);
  }

  /// Value of a variable/literal in the most recent model (after SAT).
  LBool model_value(Var v) const { return model_[v]; }
  LBool model_value(Lit l) const { return xor_sign(model_[l.var()], l.sign()); }

  /// Subset of the assumptions responsible for UNSAT (after kFalse),
  /// negated (i.e. the clause that could be learnt).
  const std::vector<Lit>& conflict_core() const { return conflict_core_; }

  /// True while no top-level contradiction has been derived.
  bool ok() const { return ok_; }

  /// Top-level simplification: propagate pending units and drop clauses
  /// satisfied at level 0. Returns false if the formula became UNSAT.
  bool simplify();

  const SolverStats& stats() const { return stats_; }

  // --- Inprocessing / frozen variables ----------------------------------

  /// Freeze a variable: inprocessing may never eliminate it. Freezing is
  /// how external references are declared — theory-propagator terms,
  /// clause-sharing export ranges, anything a later add_clause or
  /// assumption might mention. Assumption variables are frozen
  /// automatically (and permanently) at solve() entry; every other owner
  /// must freeze before the first solve that could run a pass.
  void set_frozen(Var v, bool frozen = true) {
    frozen_[v] = static_cast<char>(frozen);
  }
  bool is_frozen(Var v) const { return frozen_[v] != 0; }

  /// True once inprocessing removed `v` by bounded variable elimination.
  /// On SAT its model value is reconstructed from the elimination stack,
  /// so model_value() is always defined over the original formula. An
  /// eliminated variable that reappears in a later add_clause or
  /// assumption is transparently *restored* first (its removed clauses
  /// re-attached, its reconstruction entries dropped, the variable frozen
  /// from then on) — the incremental-inprocessing discipline of
  /// Fazekas/Biere/Scholl, so incremental callers never observe
  /// elimination at all. Freezing up front merely avoids the restore.
  bool is_eliminated(Var v) const { return eliminated_[v] != 0; }

  // --- Trail inspection (used by theory propagators) --------------------

  LBool value(Var v) const { return assigns_[v]; }
  LBool value(Lit l) const { return xor_sign(assigns_[l.var()], l.sign()); }
  std::int32_t level(Var v) const { return level_[v]; }
  std::int32_t decision_level() const {
    return static_cast<std::int32_t>(trail_lim_.size());
  }
  const std::vector<Lit>& trail() const { return trail_; }

  /// Initial branching polarity hint for a variable (overrides
  /// default_polarity; later overwritten by phase saving). sign=false
  /// means "try true first".
  void set_polarity(Var v, bool sign) {
    polarity_[v] = static_cast<char>(sign);
  }

  /// Raise a variable's branching activity so it is decided early —
  /// combined with set_polarity this steers the first descent toward a
  /// known (warm-start) assignment.
  void boost_activity(Var v, double amount = 1.0) {
    activity_[v] += amount;
    order_.increased(v);
  }

  /// Theory propagation entry point: enqueue `l` with the given reason
  /// clause (l must be its first literal; all others must be false). The
  /// clause is materialized in the learnt arena so conflict analysis can
  /// resolve on it. Returns false if `l` is already false (caller should
  /// then report the reason clause as a conflict instead).
  bool theory_enqueue(Lit l, std::span<const Lit> reason);

  // --- Cooperative clause exchange --------------------------------------

  /// Hooks wiring this solver into a shared clause pool (see src/par).
  /// `export_clause` fires at learn time for every clause passing the
  /// filter: units and binaries always, larger clauses when LBD <=
  /// max_export_lbd and size <= max_export_size, and — when
  /// export_var_limit >= 0 — only clauses whose variables all lie below
  /// the limit (the deterministic base encoding shared by every worker;
  /// clauses over query-local bound-guard circuits stay private).
  /// `import_clauses` is polled at restart boundaries (decision level 0)
  /// and appends foreign clauses to its argument; imported clauses are
  /// attached as learnts and are never re-exported (they are not learnt
  /// here, so the export site never sees them).
  ///
  /// Certification: imports are suppressed while a proof log is attached —
  /// a foreign clause has no RUP derivation in the local log, so importing
  /// would invalidate the DRAT certificate. Exporting is always sound.
  struct ShareHooks {
    std::function<void(std::span<const Lit>, std::uint32_t lbd)> export_clause;
    std::function<void(std::vector<SharedClause>&)> import_clauses;
    std::uint32_t max_export_lbd = 4;
    std::uint32_t max_export_size = 32;
    std::int32_t export_var_limit = -1;  ///< -1 = no variable restriction
  };
  void set_share(ShareHooks hooks) { share_ = std::move(hooks); }

  // --- Certification ----------------------------------------------------

  /// Attach a proof log (not owned; nullptr detaches). Attach before adding
  /// clauses so the log is self-contained. When detached every logging site
  /// is a single predicted-not-taken pointer test — search pays nothing.
  void set_proof(ProofLog* p) { proof_ = p; }
  ProofLog* proof() const { return proof_; }

  /// Debug invariant auditor: checks watch-list consistency (every clause
  /// watched exactly on its first two literals and vice versa), trail/level
  /// agreement, queue-head bounds, reason-clause sanity, and absence of
  /// duplicate literals in learnt clauses. Returns true when consistent;
  /// appends one message per violation to `out` when given. O(DB size) —
  /// meant for tests and the periodic `audit_period` hook, not hot paths.
  bool audit(std::vector<std::string>* out = nullptr) const;

  // --- Tuning knobs ------------------------------------------------------

  double var_decay = 0.95;
  double clause_decay = 0.999;
  int restart_base = 100;         ///< conflicts per Luby unit
  double learnt_size_factor = 1.0 / 3.0;
  double learnt_size_inc = 1.1;
  bool phase_saving = true;
  bool default_polarity = false;  ///< initial branching polarity (sign)
  /// Probability of replacing a VSIDS decision with a uniformly random
  /// unassigned variable — a portfolio diversifier. 0 = pure VSIDS.
  double random_branch_freq = 0.0;
  /// Seed for the random-branching RNG (per-worker diversification).
  void set_random_seed(std::uint64_t seed) { rng_.reseed(seed); }
  /// Run the invariant auditor every N conflicts during search (0 = off);
  /// throws std::logic_error on the first violation. Debug/test facility.
  std::int64_t audit_period = 0;
  /// Conflicts between "search_sample" trajectory events (0 = off). Each
  /// sample carries propagation/conflict rates, trail depth, learnt-DB
  /// size and the window's mean learnt LBD; samples go to the flight
  /// recorder always, to the trace sink when tracing is on, and to the
  /// sat.live.* gauges. A final sample is emitted when a solve() call
  /// ends with conflicts outstanding since the last one — so an
  /// interrupted (deadline-missed) search always leaves its last sample
  /// in the flight ring.
  std::int64_t sample_interval = 2048;
  /// Test-only fault injection: corrupt the Nth learnt clause (1-based) by
  /// dropping its last literal, in both the clause DB and the proof log.
  /// A sound checker must then reject the proof. 0 = off.
  std::uint64_t test_corrupt_learnt = 0;
  /// Run inprocessing passes (subsumption, vivification, bounded variable
  /// elimination) at restart boundaries. The first pass fires before the
  /// first descent, i.e. doubles as preprocessing.
  bool inprocess = true;
  /// Conflicts between inprocessing passes; the interval doubles after
  /// every pass (geometric backoff).
  std::int64_t inprocess_interval = 4000;

 private:
  friend class Inprocessor;
  // Reason for an assignment: clause reference or kUndefClause (decision /
  // assumption / top-level unit).
  struct VarData {
    CRef reason = kUndefClause;
    std::int32_t level = 0;
  };

  struct Watcher {
    CRef cref;
    Lit blocker;
  };

  // Construction helpers.
  bool add_clause_impl(std::span<const Lit> lits, bool theory,
                       bool log_input = true);
  void attach_clause(CRef cref);
  void detach_clause(CRef cref);
  void remove_clause(CRef cref, bool log_delete = true);
  bool locked(CRef cref) const;

  // Search machinery.
  CRef propagate();
  bool theory_propagate(Lit p, CRef& confl_out);
  void analyze(CRef confl, std::vector<Lit>& out_learnt, std::int32_t& out_btlevel,
               std::uint32_t& out_lbd);
  bool lit_redundant(Lit l, std::uint32_t abstract_levels);
  void analyze_final(Lit p);
  void unchecked_enqueue(Lit l, CRef reason);
  void cancel_until(std::int32_t level);
  Lit pick_branch_lit();
  LBool search(std::int64_t conflicts_before_restart);
  void reduce_db();
  void garbage_collect();
  void reloc_all(ClauseArena& to);

  // Activity bookkeeping.
  void var_bump(Var v);
  void var_decay_all() { var_inc_ /= var_decay; }
  void cla_bump(Clause& c);
  void cla_decay_all() { cla_inc_ /= clause_decay; }

  std::uint32_t compute_lbd(std::span<const Lit> lits);
  bool budget_exhausted() const;
  void emit_search_sample(bool final_sample);

  // Clause exchange.
  void maybe_export(std::span<const Lit> lits, std::uint32_t lbd);
  bool import_shared();  ///< drain + attach foreign clauses; returns ok_
  bool attach_imported(const SharedClause& sc);

  // Inprocessing (defined in inprocess.cpp).
  bool maybe_inprocess();  ///< run a pass when due; returns ok_
  void extend_model();     ///< replay elim_stack_ onto model_ after SAT
  void restore_var(Var v); ///< undo an elimination whose variable is reused

  // Clause database.
  ClauseArena arena_;
  std::vector<CRef> clauses_;  ///< problem clauses
  std::vector<CRef> learnts_;  ///< learnt + theory-reason clauses

  // Capacity accounting (obs/resource.hpp): absolute arena footprint,
  // refreshed at solve boundaries and after GC so `alloc_top` and the
  // watermark sampler see live/wasted bytes; retracted on destruction.
  obs::ResourceTracker arena_res_{obs::resource("sat.arena")};
  obs::ResourceTracker wasted_res_{obs::resource("sat.arena.wasted")};
  obs::ResourceTracker learnts_res_{obs::resource("sat.learnts")};
  void sync_resource_usage();

  // Assignment state.
  std::vector<LBool> assigns_;
  std::vector<VarData> vardata_;
  std::vector<std::int32_t> level_;  // mirror of vardata_.level for speed
  std::vector<Lit> trail_;
  std::vector<std::int32_t> trail_lim_;
  std::size_t qhead_ = 0;        ///< clause propagation queue head
  std::size_t theory_qhead_ = 0; ///< theory propagation queue head

  // Watches: indexed by literal (watching clauses where ~lit occurs).
  std::vector<std::vector<Watcher>> watches_;

  // Branching.
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  VarOrderHeap order_;
  std::vector<char> polarity_;  ///< saved phase per variable
  std::vector<char> decision_;
  std::vector<Var> decision_vars_;

  // Clause activity / learnt-DB sizing (MiniSat schedule: the cap grows
  // 10% every `adjust` conflicts, with `adjust` itself growing 1.5x).
  double cla_inc_ = 1.0;
  double max_learnts_ = 0.0;
  double learntsize_adjust_confl_ = 100.0;
  int learntsize_adjust_cnt_ = 100;

  // Conflict analysis scratch.
  std::vector<Lit> theory_conflict_;
  std::vector<char> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_toclear_;
  std::vector<std::uint32_t> lbd_seen_;
  std::uint32_t lbd_stamp_ = 0;

  // Assumptions / results.
  std::vector<Lit> assumptions_;
  std::vector<LBool> model_;
  std::vector<Lit> conflict_core_;

  // Inprocessing state.
  std::vector<char> frozen_;      ///< never eliminate (external references)
  std::vector<char> eliminated_;  ///< removed by variable elimination
  /// Model-reconstruction stack: per stored clause the literal indices
  /// (eliminated literal first) followed by the length, so extend_model()
  /// can replay the stack backward (MiniSat's SimpSolver layout).
  std::vector<std::uint32_t> elim_stack_;
  /// Verbatim copies of every irredundant clause an elimination removed,
  /// keyed by the eliminated variable, so restore_var() can re-attach
  /// them. Their proof deletions are deliberately *not* logged (the
  /// RUP-only checker keeps them live, making restoration proof-free).
  struct SavedElimClause {
    Var v;
    std::vector<Lit> lits;
  };
  std::vector<SavedElimClause> elim_saved_;
  std::int64_t inprocess_next_ = 0;     ///< conflict count of the next pass
  std::int64_t inprocess_backoff_ = 0;  ///< current inter-pass interval

  // Theory propagators.
  std::vector<Propagator*> propagators_;

  // Clause exchange.
  ShareHooks share_;
  std::vector<SharedClause> import_buf_;
  std::vector<Lit> import_scratch_;

  // Random branching (diversification).
  Rng rng_;

  // Certification.
  ProofLog* proof_ = nullptr;
  std::uint64_t learnt_count_ = 0;  ///< for test_corrupt_learnt targeting

  bool ok_ = true;
  SolverStats stats_;

  // Budget for the active solve call.
  std::int64_t conflict_budget_ = -1;
  double deadline_ = 0.0;  // steady-clock seconds; 0 = none
  const std::atomic<bool>* stop_ = nullptr;

  // Search-trajectory sampling window (see sample_interval).
  std::uint64_t sample_last_ns_ = 0;
  std::uint64_t sample_last_props_ = 0;
  std::uint64_t sample_last_conflicts_ = 0;
  std::uint64_t lbd_window_sum_ = 0;
  std::uint64_t lbd_window_count_ = 0;
};

}  // namespace optalloc::sat

#pragma once
// Clausal proof logging — the DRAT discipline of certified SAT solving,
// extended for the theory-augmented CDCL core:
//
//   i  <lits> 0            input clause (trusted problem axiom)
//   p  <rhs> <coef lit>* 0 pseudo-Boolean axiom  sum coef*lit >= rhs
//   t  <lits> 0            theory lemma: a clausal weakening of one PB
//                          axiom (checkable against the `p` lines alone)
//      <lits> 0            RUP lemma (plain DRAT addition line)
//   d  <lits> 0            clause deletion (advisory; ignoring it is sound
//                          because every DB clause is entailed — this
//                          checker restricts itself to RUP, never RAT)
//
// With no PB constraints the log degenerates to DRAT with an `i` prefix on
// input clauses, i.e. a self-contained CNF + proof in one stream.
//
// Cost model: the solver holds a `ProofLog*` that is null by default; every
// producer site is guarded by one pointer test, so search pays nothing when
// proof logging is off.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace optalloc::sat {

enum class ProofStepKind : std::uint8_t {
  kInput,   ///< trusted problem clause
  kTheory,  ///< clausal weakening of a PB axiom (checked, not RUP)
  kLemma,   ///< RUP-checked derived clause
  kDelete,  ///< advisory deletion
};

/// One step; literals live in the log's shared pool [begin, end).
struct ProofStep {
  ProofStepKind kind;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

/// A PB axiom registered with the proof:  sum coef_i * lit_i >= rhs
/// (all coefficients positive — the propagator's normalized form).
struct ProofPbTerm {
  std::int64_t coef;
  Lit lit;
};
struct ProofPbConstraint {
  std::vector<ProofPbTerm> terms;
  std::int64_t rhs = 0;
};

/// Append-only in-memory proof. One log may span several solve() calls on
/// the same solver (the optimizer's incremental binary search): lemmas
/// accumulate, and each UNSAT answer's conflict-core lemma becomes a
/// checkable target (see check::check_proof).
class ProofLog {
 public:
  void add_input(std::span<const Lit> lits) { push(ProofStepKind::kInput, lits); }
  void add_theory(std::span<const Lit> lits) { push(ProofStepKind::kTheory, lits); }
  void add_lemma(std::span<const Lit> lits) { push(ProofStepKind::kLemma, lits); }
  void add_delete(std::span<const Lit> lits) { push(ProofStepKind::kDelete, lits); }
  void add_pb_ge(std::span<const ProofPbTerm> terms, std::int64_t rhs);

  std::size_t num_steps() const { return steps_.size(); }
  const ProofStep& step(std::size_t i) const { return steps_[i]; }
  std::span<const Lit> lits(const ProofStep& s) const {
    return {pool_.data() + s.begin, pool_.data() + s.end};
  }
  std::span<const ProofPbConstraint> pb_constraints() const { return pb_; }

  /// Index of the most recently appended step (log must be non-empty).
  std::size_t last_step() const { return steps_.size() - 1; }

  /// Number of kLemma steps appended so far.
  std::uint64_t num_lemmas() const { return num_lemmas_; }

  /// Serialize in the text format documented above (DIMACS literals).
  void write_text(std::ostream& os) const;

  /// Parse the text format, appending to this log. Returns false and fills
  /// `error` on malformed input.
  bool parse_text(std::istream& is, std::string* error);

 private:
  void push(ProofStepKind kind, std::span<const Lit> lits);

  std::vector<ProofStep> steps_;
  std::vector<Lit> pool_;
  std::vector<ProofPbConstraint> pb_;
  std::uint64_t num_lemmas_ = 0;
};

}  // namespace optalloc::sat

#pragma once
// DIMACS CNF reader/writer. Used by the `dimacs_solve` example CLI and by
// tests that replay reference instances through the solver.

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/solver.hpp"

namespace optalloc::sat {

struct DimacsProblem {
  std::int32_t num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

/// Parse DIMACS CNF from a stream. Throws std::runtime_error on malformed
/// input. Variables are converted from 1-based DIMACS to 0-based Var.
DimacsProblem parse_dimacs(std::istream& in);

/// Load a DimacsProblem into a solver (creating variables as needed).
/// Returns false if the formula is trivially unsatisfiable.
bool load_into(const DimacsProblem& problem, Solver& solver);

/// Serialize a clause set in DIMACS format.
void write_dimacs(std::ostream& out, const DimacsProblem& problem);

}  // namespace optalloc::sat

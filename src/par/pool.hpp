#pragma once
// Shared learnt-clause pool for the cooperative parallel portfolio
// (src/alloc/portfolio): every worker exports its valuable learnt clauses
// (units, binaries, low-LBD) and drains the other workers' exports at
// restart boundaries.
//
// Layout: one shard per producer. A shard is a fixed-capacity overwrite
// ring guarded by its own mutex, so
//   * a producer only ever touches its own shard — publishers never
//     contend with each other;
//   * consumers lock a foreign shard briefly to copy the entries published
//     since their last visit (per-shard cursors live in the consumer);
//   * a slow consumer loses overwritten clauses instead of stalling the
//     producer — clause exchange is best-effort, dropping is always sound.
//
// There is deliberately no global lock and no allocation on the consumer's
// cursor path; the only allocations are the literal copies of published
// clauses, which are rare by construction (the export filter admits a
// small fraction of learnts).

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sat/solver.hpp"
#include "util/mutex.hpp"

namespace optalloc::par {

/// One clause travelling between workers (defined next to the solver's
/// sharing hooks so drains move straight into the import buffer).
using SharedClause = sat::SharedClause;

struct PoolOptions {
  /// Entries retained per producer shard before overwrite.
  std::size_t shard_capacity = 4096;
};

/// Cumulative pool-wide counters (relaxed atomics; exact under quiescence).
struct PoolStats {
  std::uint64_t published = 0;   ///< clauses accepted into a shard
  std::uint64_t consumed = 0;    ///< clauses handed to consumers (all of them)
  std::uint64_t overwritten = 0; ///< ring entries a consumer arrived too late for
};

class ClausePool {
 public:
  ClausePool(int num_workers, PoolOptions options = {});

  int num_workers() const { return static_cast<int>(shards_.size()); }

  /// Publish a clause from `worker`'s solver. The caller has already
  /// applied the export filter (LBD/size/variable limits).
  void publish(int worker, std::span<const sat::Lit> lits, std::uint32_t lbd);

  /// Per-shard read positions of one consumer. Value-semantic so each
  /// worker owns its own cursors and drain() needs no consumer registry.
  struct Cursor {
    std::vector<std::uint64_t> next;  ///< next sequence number per shard
  };
  Cursor make_cursor() const {
    return Cursor{std::vector<std::uint64_t>(shards_.size(), 0)};
  }

  /// Copy every clause published by other workers since the cursor's last
  /// visit into `out` (appending), advancing the cursor. Clauses from
  /// `worker`'s own shard are skipped (re-export suppression: a clause
  /// never echoes back to its producer). At most `max_clauses` are taken.
  /// Returns the number of clauses delivered.
  std::size_t drain(int worker, Cursor& cursor,
                    std::vector<SharedClause>& out,
                    std::size_t max_clauses = 1024);

  ~ClausePool();

  PoolStats stats() const;

 private:
  struct Shard {
    mutable util::Mutex mu;
    /// slot i holds sequence head-ring+i... % cap
    std::vector<SharedClause> ring OPTALLOC_GUARDED_BY(mu);
    std::uint64_t head OPTALLOC_GUARDED_BY(mu) = 0;  ///< clauses published
    /// Literal bytes retained across the ring ("par.pool" resource).
    std::size_t lit_bytes OPTALLOC_GUARDED_BY(mu) = 0;
  };

  std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  obs::Resource res_ = obs::resource("par.pool");
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> consumed_{0};
  std::atomic<std::uint64_t> overwritten_{0};
};

}  // namespace optalloc::par

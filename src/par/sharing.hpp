#pragma once
// Cooperative-search shared state and the per-worker client handle.
//
// A cooperative portfolio run (src/alloc/portfolio) owns:
//   * one SharedInterval — the global cost interval [lower, upper]: any
//     worker that proves "no allocation cheaper than L" raises lower, any
//     worker that finds an incumbent of cost U drops upper, and every
//     worker folds the global interval into its own binary search before
//     each SOLVE step, so the searches converge jointly;
//   * one ClausePool per group of workers with identical encodings — only
//     solvers over the same variable numbering may exchange clauses.
//
// Each worker gets a SharingClient: a thin, single-thread handle bundling
// its pool cursor, worker index, and export filter, and wiring the
// sat::Solver sharing hooks. The client itself is not thread-safe; the
// underlying pool and interval are.

#include <atomic>
#include <cstdint>
#include <limits>

#include "par/pool.hpp"
#include "sat/solver.hpp"

namespace optalloc::par {

/// Globally shared, monotonically shrinking cost interval. `lower` only
/// rises (CAS-max), `upper` only drops (CAS-min); both start unbounded.
/// Callers must only raise `lower` with a *proven* bound and only drop
/// `upper` with the cost of a *feasible* incumbent, so lower <= upper
/// always holds for consistent publishers.
class SharedInterval {
 public:
  static constexpr std::int64_t kNoLower =
      std::numeric_limits<std::int64_t>::min();
  static constexpr std::int64_t kNoUpper =
      std::numeric_limits<std::int64_t>::max();

  std::int64_t lower() const { return lower_.load(std::memory_order_acquire); }
  std::int64_t upper() const { return upper_.load(std::memory_order_acquire); }

  /// Raise the proven lower bound; returns true if `v` improved it.
  bool raise_lower(std::int64_t v) {
    std::int64_t cur = lower_.load(std::memory_order_relaxed);
    while (v > cur) {
      if (lower_.compare_exchange_weak(cur, v, std::memory_order_release,
                                       std::memory_order_relaxed)) {
        updates_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  /// Drop the incumbent upper bound; returns true if `v` improved it.
  bool drop_upper(std::int64_t v) {
    std::int64_t cur = upper_.load(std::memory_order_relaxed);
    while (v < cur) {
      if (upper_.compare_exchange_weak(cur, v, std::memory_order_release,
                                       std::memory_order_relaxed)) {
        updates_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  /// Total successful raises + drops across all workers.
  std::uint64_t updates() const {
    return updates_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> lower_{kNoLower};
  std::atomic<std::int64_t> upper_{kNoUpper};
  std::atomic<std::uint64_t> updates_{0};
};

/// One worker's handle on the shared state. Constructed by the portfolio;
/// passed to the optimizer via OptimizeOptions::share. Either pointer may
/// be null: interval == nullptr disables bound broadcasting, pool ==
/// nullptr disables clause exchange (e.g. a worker whose encoder config
/// has no sharing partner).
class SharingClient {
 public:
  SharingClient(SharedInterval* interval, ClausePool* pool, int worker)
      : interval_(interval), pool_(pool), worker_(worker) {
    if (pool_ != nullptr) cursor_ = pool_->make_cursor();
  }

  SharedInterval* interval() const { return interval_; }
  bool has_pool() const { return pool_ != nullptr; }
  int worker() const { return worker_; }

  /// Export filter forwarded to the solver hooks.
  std::uint32_t max_export_lbd = 4;
  std::uint32_t max_export_size = 32;
  /// Largest batch pulled per restart drain.
  std::size_t max_import_batch = 512;

  /// Install the clause-exchange hooks on `solver`. `var_limit` restricts
  /// exchanged clauses to the deterministic base encoding (variables that
  /// exist right after build(), before any query-dependent bound-guard
  /// circuits), so a clause means the same thing in every group member.
  /// No-op without a pool. The solver itself suppresses imports while a
  /// proof log is attached (an imported clause has no RUP derivation in
  /// the local log); exports stay on either way.
  void attach(sat::Solver& solver, std::int32_t var_limit);

 private:
  SharedInterval* interval_;
  ClausePool* pool_;
  int worker_;
  ClausePool::Cursor cursor_;
};

}  // namespace optalloc::par

#include "par/sharing.hpp"

namespace optalloc::par {

void SharingClient::attach(sat::Solver& solver, std::int32_t var_limit) {
  if (pool_ == nullptr) return;
  // The export range is the base encoding shared by every worker: foreign
  // clauses may arrive over any of these variables at any time, so none of
  // them may be eliminated by inprocessing (imports over a locally
  // eliminated variable would otherwise have to be dropped, eroding the
  // portfolio's clause exchange).
  for (sat::Var v = 0; v < var_limit && v < solver.num_vars(); ++v) {
    solver.set_frozen(v);
  }
  sat::Solver::ShareHooks hooks;
  hooks.max_export_lbd = max_export_lbd;
  hooks.max_export_size = max_export_size;
  hooks.export_var_limit = var_limit;
  hooks.export_clause = [this](std::span<const sat::Lit> lits,
                               std::uint32_t lbd) {
    pool_->publish(worker_, lits, lbd);
  };
  hooks.import_clauses = [this](std::vector<sat::SharedClause>& out) {
    pool_->drain(worker_, cursor_, out, max_import_batch);
  };
  solver.set_share(std::move(hooks));
}

}  // namespace optalloc::par

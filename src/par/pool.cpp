#include "par/pool.hpp"

#include <algorithm>
#include <cassert>

namespace optalloc::par {

ClausePool::ClausePool(int num_workers, PoolOptions options)
    : capacity_(std::max<std::size_t>(1, options.shard_capacity)) {
  assert(num_workers > 0);
  shards_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->ring.resize(capacity_);
  }
}

ClausePool::~ClausePool() {
  // Retract the rings' footprint from the resource registry (portfolio
  // runs construct a pool per race).
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    const std::uint64_t held = std::min<std::uint64_t>(shard->head, capacity_);
    obs::res_add(res_, -static_cast<std::int64_t>(shard->lit_bytes),
                 -static_cast<std::int64_t>(held));
  }
}

void ClausePool::publish(int worker, std::span<const sat::Lit> lits,
                         std::uint32_t lbd) {
  assert(worker >= 0 && worker < num_workers());
  Shard& shard = *shards_[static_cast<std::size_t>(worker)];
  util::MutexLock lock(shard.mu);
  SharedClause& slot = shard.ring[shard.head % capacity_];
  // Overwriting recycles the slot: only the literal-byte delta and (for a
  // previously empty slot) one item land in the resource registry.
  const std::size_t old_bytes = slot.lits.size() * sizeof(sat::Lit);
  slot.lits.assign(lits.begin(), lits.end());
  slot.lbd = lbd;
  const std::size_t new_bytes = slot.lits.size() * sizeof(sat::Lit);
  shard.lit_bytes += new_bytes - old_bytes;
  obs::res_add(res_,
               static_cast<std::int64_t>(new_bytes) -
                   static_cast<std::int64_t>(old_bytes),
               shard.head < capacity_ ? 1 : 0);
  ++shard.head;
  published_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t ClausePool::drain(int worker, Cursor& cursor,
                              std::vector<SharedClause>& out,
                              std::size_t max_clauses) {
  assert(cursor.next.size() == shards_.size());
  std::size_t taken = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (static_cast<int>(s) == worker) continue;
    if (taken >= max_clauses) break;
    Shard& shard = *shards_[s];
    util::MutexLock lock(shard.mu);
    std::uint64_t from = cursor.next[s];
    const std::uint64_t oldest =
        shard.head > capacity_ ? shard.head - capacity_ : 0;
    if (from < oldest) {
      overwritten_.fetch_add(oldest - from, std::memory_order_relaxed);
      from = oldest;
    }
    while (from < shard.head && taken < max_clauses) {
      out.push_back(shard.ring[from % capacity_]);
      ++from;
      ++taken;
    }
    cursor.next[s] = from;
  }
  if (taken > 0) consumed_.fetch_add(taken, std::memory_order_relaxed);
  return taken;
}

PoolStats ClausePool::stats() const {
  PoolStats s;
  s.published = published_.load(std::memory_order_relaxed);
  s.consumed = consumed_.load(std::memory_order_relaxed);
  s.overwritten = overwritten_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace optalloc::par

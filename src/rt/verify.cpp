#include "rt/verify.hpp"

#include <algorithm>
#include <numeric>

namespace optalloc::rt {

namespace {

void violation(VerifyReport& report, std::string msg) {
  report.violations.push_back(std::move(msg));
}

}  // namespace

std::vector<int> message_dm_ranks(const TaskSet& ts) {
  const auto refs = ts.message_refs();
  const auto n = static_cast<int>(refs.size());
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const Ticks da = ts.message(refs[static_cast<std::size_t>(a)]).deadline;
    const Ticks db = ts.message(refs[static_cast<std::size_t>(b)]).deadline;
    if (da != db) return da < db;
    return a < b;
  });
  std::vector<int> rank(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    rank[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  }
  return rank;
}

VerifyReport verify(const TaskSet& ts, const Architecture& arch,
                    const Allocation& alloc) {
  VerifyReport report;
  const auto num_tasks = static_cast<int>(ts.tasks.size());
  const auto num_media = static_cast<int>(arch.media.size());
  const auto refs = ts.message_refs();
  const auto num_msgs = static_cast<int>(refs.size());

  if (static_cast<int>(alloc.task_ecu.size()) != num_tasks) {
    violation(report, "allocation: wrong task_ecu size");
    return report;
  }
  if (static_cast<int>(alloc.msg_route.size()) != num_msgs ||
      static_cast<int>(alloc.msg_local_deadline.size()) != num_msgs) {
    violation(report, "allocation: wrong message route/deadline size");
    return report;
  }

  auto ecu_of = [&](int task) {
    return alloc.task_ecu[static_cast<std::size_t>(task)];
  };

  // ---- Placement constraints (paper eq. 4) -----------------------------
  for (int i = 0; i < num_tasks; ++i) {
    const Task& t = ts.tasks[static_cast<std::size_t>(i)];
    const int p = ecu_of(i);
    if (p < 0 || p >= arch.num_ecus) {
      violation(report, "task " + t.name + ": ECU out of range");
      return report;
    }
    if (!t.allowed_on(p)) {
      violation(report, "task " + t.name + ": forbidden placement");
    }
    if (!arch.can_host_tasks(p)) {
      violation(report, "task " + t.name + ": placed on gateway-only ECU");
    }
    for (const int j : t.separated_from) {
      if (ecu_of(j) == p) {
        violation(report, "task " + t.name + ": not separated from " +
                              ts.tasks[static_cast<std::size_t>(j)].name);
      }
    }
  }

  // ---- Memory budgets ---------------------------------------------------
  if (!arch.ecu_memory.empty()) {
    std::vector<std::int64_t> used(static_cast<std::size_t>(arch.num_ecus), 0);
    for (int i = 0; i < num_tasks; ++i) {
      used[static_cast<std::size_t>(ecu_of(i))] +=
          ts.tasks[static_cast<std::size_t>(i)].memory;
    }
    for (int p = 0; p < arch.num_ecus; ++p) {
      const std::int64_t cap = arch.ecu_memory[static_cast<std::size_t>(p)];
      if (cap > 0 && used[static_cast<std::size_t>(p)] > cap) {
        violation(report,
                  "ECU " + std::to_string(p) + ": memory budget exceeded");
      }
    }
  }

  // ---- Task priorities (deadline-monotonic, paper eqs. 9-10) ------------
  std::vector<int> prio = alloc.task_prio;
  if (prio.empty()) {
    prio = deadline_monotonic_ranks(ts);
  } else if (static_cast<int>(prio.size()) != num_tasks) {
    violation(report, "allocation: wrong task_prio size");
    return report;
  } else {
    for (int i = 0; i < num_tasks; ++i) {
      for (int j = 0; j < num_tasks; ++j) {
        const Ticks di = ts.tasks[static_cast<std::size_t>(i)].deadline;
        const Ticks dj = ts.tasks[static_cast<std::size_t>(j)].deadline;
        if (di < dj && prio[static_cast<std::size_t>(i)] >
                           prio[static_cast<std::size_t>(j)]) {
          violation(report, "priorities not deadline-monotonic");
          i = num_tasks;  // report once
          break;
        }
      }
    }
  }

  // ---- Task response times (paper eq. 1 / eqs. 5-13) --------------------
  report.task_response.assign(static_cast<std::size_t>(num_tasks), -1);
  for (int i = 0; i < num_tasks; ++i) {
    const Task& t = ts.tasks[static_cast<std::size_t>(i)];
    const int p = ecu_of(i);
    if (!t.allowed_on(p)) continue;  // already reported
    std::vector<Interferer> hp;
    for (int j = 0; j < num_tasks; ++j) {
      if (j == i || ecu_of(j) != p) continue;
      if (prio[static_cast<std::size_t>(j)] <
          prio[static_cast<std::size_t>(i)]) {
        const Task& tj = ts.tasks[static_cast<std::size_t>(j)];
        hp.push_back({tj.wcet[static_cast<std::size_t>(p)], tj.period,
                      tj.release_jitter});
      }
    }
    // With release jitter, the response measured from the release must fit
    // d_i - J_i so the deadline holds relative to the arrival.
    const auto r = response_time_fp(t.wcet[static_cast<std::size_t>(p)], hp,
                                    t.deadline - t.release_jitter);
    if (!r) {
      violation(report, "task " + t.name + ": deadline miss");
    } else {
      report.task_response[static_cast<std::size_t>(i)] = *r;
    }
  }

  // ---- Slot table / TRT --------------------------------------------------
  report.trt_per_medium.assign(static_cast<std::size_t>(num_media), 0);
  std::vector<std::vector<Ticks>> slots = alloc.slots;
  slots.resize(static_cast<std::size_t>(num_media));
  for (int m = 0; m < num_media; ++m) {
    const Medium& medium = arch.media[static_cast<std::size_t>(m)];
    if (medium.type != MediumType::kTokenRing) continue;
    auto& s = slots[static_cast<std::size_t>(m)];
    if (s.size() != medium.ecus.size()) {
      violation(report, "medium " + medium.name + ": missing slot table");
      return report;
    }
    Ticks lambda = 0;
    for (const Ticks slot : s) {
      if (slot < medium.slot_min || slot > medium.slot_max) {
        violation(report, "medium " + medium.name + ": slot out of bounds");
      }
      lambda += slot;
    }
    report.trt_per_medium[static_cast<std::size_t>(m)] = lambda;
    report.sum_trt += lambda;
  }

  auto slot_of = [&](int medium, int ecu) -> Ticks {
    const Medium& md = arch.media[static_cast<std::size_t>(medium)];
    for (std::size_t j = 0; j < md.ecus.size(); ++j) {
      if (md.ecus[j] == ecu) {
        return slots[static_cast<std::size_t>(medium)][j];
      }
    }
    return -1;
  };

  // ---- Message routes (paper Section 4) ----------------------------------
  // sender_station[g][leg]: the ECU whose queue/slot the message uses on
  // that leg (the sending task's ECU on leg 0, gateways afterwards).
  const std::vector<int> msg_rank = message_dm_ranks(ts);
  std::vector<std::vector<int>> leg_station(
      static_cast<std::size_t>(num_msgs));
  report.msg_legs.resize(static_cast<std::size_t>(num_msgs));

  for (int g = 0; g < num_msgs; ++g) {
    const auto& ref = refs[static_cast<std::size_t>(g)];
    const Message& msg = ts.message(ref);
    const Task& sender = ts.tasks[static_cast<std::size_t>(ref.task)];
    const auto& route = alloc.msg_route[static_cast<std::size_t>(g)];
    const auto& budgets = alloc.msg_local_deadline[static_cast<std::size_t>(g)];
    const int src = ecu_of(ref.task);
    const int dst = ecu_of(msg.target_task);
    const std::string label = sender.name + "->msg" + std::to_string(g);

    if (budgets.size() != route.size()) {
      violation(report, label + ": budget/route size mismatch");
      return report;
    }
    if (src == dst) {
      if (!route.empty()) {
        violation(report, label + ": intra-ECU message must not use media");
      }
      continue;
    }
    if (route.empty()) {
      violation(report, label + ": inter-ECU message has no route");
      continue;
    }
    // Path validity v(h): endpoints on first/last medium, gateways link
    // consecutive media, sender/receiver not on the adjacent next medium
    // (otherwise a shorter path exists and the closure would not list this
    // one — paper's v(h) side conditions).
    const auto n_legs = static_cast<int>(route.size());
    bool path_ok = true;
    for (const int m : route) {
      if (m < 0 || m >= num_media) {
        violation(report, label + ": medium out of range");
        return report;
      }
    }
    if (!arch.media[static_cast<std::size_t>(route[0])].connects(src)) {
      violation(report, label + ": sender not on first medium");
      path_ok = false;
    }
    if (!arch.media[static_cast<std::size_t>(
                        route[static_cast<std::size_t>(n_legs - 1)])]
             .connects(dst)) {
      violation(report, label + ": receiver not on last medium");
      path_ok = false;
    }
    if (n_legs >= 2) {
      if (arch.media[static_cast<std::size_t>(route[1])].connects(src)) {
        violation(report, label + ": sender also on second medium");
        path_ok = false;
      }
      if (arch.media[static_cast<std::size_t>(
                         route[static_cast<std::size_t>(n_legs - 2)])]
              .connects(dst)) {
        violation(report, label + ": receiver also on penultimate medium");
        path_ok = false;
      }
    }
    auto& stations = leg_station[static_cast<std::size_t>(g)];
    stations.push_back(src);
    for (int l = 1; l < n_legs; ++l) {
      const int gw = arch.gateway_between(route[static_cast<std::size_t>(l - 1)],
                                          route[static_cast<std::size_t>(l)]);
      if (gw < 0) {
        violation(report, label + ": consecutive media share no gateway");
        path_ok = false;
        break;
      }
      stations.push_back(gw);
    }
    if (!path_ok) continue;

    // Deadline budget: sum of local deadlines + gateway service <= Delta.
    Ticks serv = 0;
    for (int l = 0; l + 1 < n_legs; ++l) {
      serv += arch.media[static_cast<std::size_t>(
                             route[static_cast<std::size_t>(l)])]
                  .gateway_cost;
    }
    const Ticks budget_sum =
        std::accumulate(budgets.begin(), budgets.end(), Ticks{0});
    if (budget_sum + serv > msg.deadline) {
      violation(report, label + ": local deadlines exceed end-to-end deadline");
    }
  }

  // ---- Per-medium message response times (paper eqs. 2-3 + Section 4) ---
  // Jitter per leg: J^k_m = J_m + sum over previous legs (d - beta).
  for (int g = 0; g < num_msgs; ++g) {
    const auto& route = alloc.msg_route[static_cast<std::size_t>(g)];
    const auto& budgets =
        alloc.msg_local_deadline[static_cast<std::size_t>(g)];
    const Message& msg = ts.message(refs[static_cast<std::size_t>(g)]);
    auto& legs = report.msg_legs[static_cast<std::size_t>(g)];
    legs.clear();
    Ticks jitter = msg.release_jitter;
    for (std::size_t l = 0; l < route.size(); ++l) {
      MessageLegReport leg;
      leg.medium = route[l];
      leg.jitter = jitter;
      leg.local_deadline = budgets[l];
      legs.push_back(leg);
      const Medium& medium = arch.media[static_cast<std::size_t>(route[l])];
      jitter += budgets[l] - transmission_ticks(medium, msg.size_bytes);
    }
  }

  for (int g = 0; g < num_msgs; ++g) {
    const auto& route = alloc.msg_route[static_cast<std::size_t>(g)];
    // Skip messages whose station chain is incomplete (path validation
    // already reported the violation).
    if (route.empty() ||
        leg_station[static_cast<std::size_t>(g)].size() != route.size()) {
      continue;
    }
    const auto& ref = refs[static_cast<std::size_t>(g)];
    const Message& msg = ts.message(ref);
    const std::string label =
        ts.tasks[static_cast<std::size_t>(ref.task)].name + "->msg" +
        std::to_string(g);

    for (std::size_t l = 0; l < route.size(); ++l) {
      const int k = route[l];
      const Medium& medium = arch.media[static_cast<std::size_t>(k)];
      const int station = leg_station[static_cast<std::size_t>(g)][l];
      const Ticks rho = transmission_ticks(medium, msg.size_bytes);
      MessageLegReport& leg = report.msg_legs[static_cast<std::size_t>(g)][l];

      // Interferers: higher-priority messages that also use medium k —
      // for CAN all of them (bus-wide arbitration); for TDMA only those
      // queued at the same station.
      std::vector<Interferer> hp;
      for (int h = 0; h < num_msgs; ++h) {
        if (h == g) continue;
        if (msg_rank[static_cast<std::size_t>(h)] >=
            msg_rank[static_cast<std::size_t>(g)]) {
          continue;
        }
        const auto& other_route = alloc.msg_route[static_cast<std::size_t>(h)];
        if (leg_station[static_cast<std::size_t>(h)].size() !=
            other_route.size()) {
          continue;  // interferer's own path is invalid; already reported
        }
        for (std::size_t ol = 0; ol < other_route.size(); ++ol) {
          if (other_route[ol] != k) continue;
          if (medium.type == MediumType::kTokenRing &&
              leg_station[static_cast<std::size_t>(h)][ol] != station) {
            continue;
          }
          const auto& href = refs[static_cast<std::size_t>(h)];
          const Message& hmsg = ts.message(href);
          hp.push_back(
              {transmission_ticks(medium, hmsg.size_bytes),
               ts.tasks[static_cast<std::size_t>(href.task)].period,
               report.msg_legs[static_cast<std::size_t>(h)][ol].jitter});
        }
      }

      std::optional<Ticks> r;
      if (medium.type == MediumType::kCan) {
        Ticks blocking = 0;
        if (medium.can_blocking) {
          // Longest lower-priority frame sharing the bus.
          for (int h = 0; h < num_msgs; ++h) {
            if (h == g || msg_rank[static_cast<std::size_t>(h)] <=
                              msg_rank[static_cast<std::size_t>(g)]) {
              continue;
            }
            const auto& other_route =
                alloc.msg_route[static_cast<std::size_t>(h)];
            for (const int ok_medium : other_route) {
              if (ok_medium != k) continue;
              blocking = std::max(
                  blocking,
                  transmission_ticks(
                      medium,
                      ts.message(refs[static_cast<std::size_t>(h)])
                          .size_bytes));
            }
          }
        }
        r = response_time_fp(rho + blocking, hp, leg.local_deadline);
      } else {
        const Ticks own_slot = slot_of(k, station);
        const Ticks lambda =
            report.trt_per_medium[static_cast<std::size_t>(k)];
        if (own_slot < 0) {
          violation(report, label + ": station not on medium");
          continue;
        }
        if (own_slot < rho) {
          violation(report, label + ": slot shorter than message (" +
                                std::to_string(own_slot) + " < " +
                                std::to_string(rho) + ")");
          continue;
        }
        r = tdma_response_time(rho, hp, lambda, own_slot,
                               leg.local_deadline);
      }
      if (!r) {
        violation(report, label + ": leg deadline miss on medium " +
                              medium.name);
      } else {
        leg.response = *r;
        leg.ok = true;
      }
    }
  }

  // ---- CAN utilisation ----------------------------------------------------
  for (int m = 0; m < num_media; ++m) {
    const Medium& medium = arch.media[static_cast<std::size_t>(m)];
    if (medium.type != MediumType::kCan) continue;
    std::vector<Interferer> on_bus;
    for (int g = 0; g < num_msgs; ++g) {
      for (const int k : alloc.msg_route[static_cast<std::size_t>(g)]) {
        if (k != m) continue;
        const auto& ref = refs[static_cast<std::size_t>(g)];
        on_bus.push_back(
            {transmission_ticks(medium, ts.message(ref).size_bytes),
             ts.tasks[static_cast<std::size_t>(ref.task)].period, 0});
      }
    }
    if (!on_bus.empty()) {
      report.max_can_util_ppm =
          std::max(report.max_can_util_ppm, utilization_ppm(on_bus));
    }
  }

  report.feasible = report.violations.empty();
  return report;
}

}  // namespace optalloc::rt

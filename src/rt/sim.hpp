#pragma once
// Discrete-event execution of an allocation: fixed-priority preemptive
// scheduling on every ECU, TDMA slot rotation on token rings, priority
// arbitration on CAN — the executable counterpart of the analytical model.
//
// Purpose: independent validation. The response-time analysis claims an
// upper bound on every response time; the simulator produces *observed*
// response times of a concrete run, and the property tests assert
// observed <= analyzed for every job and every message leg. A violation
// would expose an unsound analysis or encoder.
//
// Model semantics (mirrors rt/analysis.hpp exactly):
//   * tasks release periodically (first release optionally delayed by up
//     to their release jitter), run preemptively under the allocation's
//     priority order, and enqueue their messages on completion;
//   * token rings rotate through the slot table cyclically; a station
//     transmits queued messages (highest priority first) that fit the
//     remaining slot; gateways store-and-forward with the medium's
//     gateway cost;
//   * CAN transmits the globally highest-priority queued frame; when the
//     medium's can_blocking flag is clear the bus follows the paper's
//     idealized preemptable-frame model of eq. (2), with it set frames
//     are non-preemptive (Tindell's B term).

#include <cstdint>
#include <string>
#include <vector>

#include "rt/model.hpp"
#include "util/rng.hpp"

namespace optalloc::rt {

struct SimOptions {
  Ticks horizon = 0;          ///< 0 = two hyperperiod-ish spans (capped)
  Ticks max_horizon = 200000; ///< cap when deriving the horizon
  std::uint64_t seed = 1;     ///< jitter draws
  bool randomize_jitter = true;  ///< draw per-job release jitter in [0, J]
};

struct SimReport {
  Ticks horizon = 0;
  bool any_deadline_miss = false;
  std::vector<std::string> misses;  ///< human-readable miss descriptions

  /// Worst observed response per task (-1 if never completed a job).
  std::vector<Ticks> task_response;
  /// Worst observed per-leg delay per global message id (queue entry to
  /// delivery on that leg), aligned with the allocation's routes.
  std::vector<std::vector<Ticks>> msg_leg_response;
  /// Completed jobs per task (sanity: > 0 for every task in horizon).
  std::vector<std::int64_t> jobs_finished;
};

/// Execute the system. The allocation must be structurally valid (routes,
/// slots); behavioral deadline misses are reported, not thrown.
SimReport simulate(const TaskSet& ts, const Architecture& arch,
                   const Allocation& allocation, const SimOptions& options = {});

}  // namespace optalloc::rt

#pragma once
// Whole-system schedulability verification: given a TaskSet, an
// Architecture and a candidate Allocation, re-derive every response time
// with the exact fixed-point analysis and check every constraint of the
// paper's model. This is the ground truth that
//   * the SAT optimizer's decoded solutions are validated against
//     (independent implementation — any encoder bug shows up here), and
//   * the heuristic baselines (simulated annealing, greedy) optimize over.

#include <string>
#include <vector>

#include "rt/analysis.hpp"
#include "rt/model.hpp"

namespace optalloc::rt {

struct MessageLegReport {
  int medium = -1;
  Ticks jitter = 0;          ///< J^k_m
  Ticks response = -1;       ///< r^k_m (-1: fixed point diverged)
  Ticks local_deadline = 0;  ///< d^k_m
  bool ok = false;
};

struct VerifyReport {
  bool feasible = false;
  std::vector<std::string> violations;

  std::vector<Ticks> task_response;               ///< -1 if unschedulable
  std::vector<std::vector<MessageLegReport>> msg_legs;  ///< per global msg id

  std::vector<Ticks> trt_per_medium;  ///< Lambda per medium (0 for CAN)
  Ticks sum_trt = 0;                  ///< sum over token-ring media
  std::int64_t max_can_util_ppm = 0;  ///< max CAN bus load (ppm*... 1/1000)
};

/// Message priority ranks: deadline-monotonic over end-to-end deadlines,
/// ties broken by global message id (fixed across encoder/verifier).
std::vector<int> message_dm_ranks(const TaskSet& ts);

/// Full verification. Never throws on infeasible inputs; every violated
/// constraint appends a human-readable diagnostic.
VerifyReport verify(const TaskSet& ts, const Architecture& arch,
                    const Allocation& alloc);

}  // namespace optalloc::rt

#include "rt/analysis.hpp"

#include <algorithm>
#include <numeric>

#include "util/intmath.hpp"

namespace optalloc::rt {

namespace {

/// One interferer's contribution ceil((r + jitter) / period) * cost to a
/// fixed-point iterate, accumulated into `acc` with overflow checks. An
/// overflowing sum has certainly left any feasible bound, so the caller
/// treats nullopt exactly like divergence past `bound`.
std::optional<Ticks> add_interference(std::optional<Ticks> acc, Ticks r,
                                      const Interferer& j) {
  if (!acc) return std::nullopt;
  const std::optional<Ticks> activations = checked_add(r, j.jitter);
  if (!activations) return std::nullopt;
  const std::optional<Ticks> load =
      checked_mul(ceil_div(*activations, j.period), j.cost);
  if (!load) return std::nullopt;
  return checked_add(*acc, *load);
}

}  // namespace

std::optional<Ticks> response_time_fp(Ticks own_cost,
                                      std::span<const Interferer> hp,
                                      Ticks bound) {
  Ticks r = own_cost;
  if (r > bound) return std::nullopt;
  for (;;) {
    std::optional<Ticks> next = own_cost;
    for (const Interferer& j : hp) next = add_interference(next, r, j);
    if (!next || *next > bound) return std::nullopt;
    if (*next == r) return r;
    r = *next;
  }
}

std::optional<Ticks> tdma_response_time(Ticks rho,
                                        std::span<const Interferer> hp,
                                        Ticks round_length, Ticks own_slot,
                                        Ticks bound) {
  Ticks r = rho;
  if (r > bound) return std::nullopt;
  for (;;) {
    std::optional<Ticks> next = rho;
    for (const Interferer& j : hp) next = add_interference(next, r, j);
    if (next) {
      const std::optional<Ticks> wait =
          checked_mul(ceil_div(r, round_length), round_length - own_slot);
      next = wait ? checked_add(*next, *wait) : std::nullopt;
    }
    if (!next || *next > bound) return std::nullopt;
    if (*next == r) return r;
    r = *next;
  }
}

std::int64_t can_frame_bits(std::int64_t payload) {
  // CAN 2.0A: 47 bits of framing per data frame; only 34 of those plus the
  // payload are subject to bit stuffing (1 stuff bit per 4 bits worst case).
  const std::int64_t data_bits = 8 * payload;
  return 47 + data_bits + (34 + data_bits - 1) / 4;
}

Ticks transmission_ticks(const Medium& medium, std::int64_t size_bytes) {
  if (medium.type == MediumType::kCan) {
    // Split into frames of up to 8 payload bytes.
    Ticks total = 0;
    std::int64_t remaining = size_bytes;
    do {
      const std::int64_t chunk = std::min<std::int64_t>(remaining, 8);
      total += ceil_div(can_frame_bits(chunk) * medium.can_bit_ticks,
                        medium.can_bits_per_tick);
      remaining -= chunk;
    } while (remaining > 0);
    return total;
  }
  return std::max<Ticks>(1, size_bytes * medium.ring_byte_ticks);
}

std::int64_t utilization_ppm(std::span<const Interferer> msgs) {
  // ceil( sum(cost/period) * 1000 ) computed exactly over rationals via a
  // common denominator walk (avoids floating point in the cost function).
  // sum cost_i/period_i = sum over i of cost_i * (L / period_i) / L with
  // L = lcm; instead accumulate numerator over running lcm.
  std::int64_t num = 0, den = 1;
  for (const Interferer& m : msgs) {
    // num/den += cost/period.
    const std::int64_t g = std::gcd(den, m.period);
    const std::int64_t new_den = den / g * m.period;
    num = num * (new_den / den) + m.cost * (new_den / m.period);
    den = new_den;
  }
  return ceil_div(num * 1000, den);
}

std::vector<int> deadline_monotonic_ranks(const TaskSet& ts) {
  const auto n = static_cast<int>(ts.tasks.size());
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const Ticks da = ts.tasks[static_cast<std::size_t>(a)].deadline;
    const Ticks db = ts.tasks[static_cast<std::size_t>(b)].deadline;
    if (da != db) return da < db;
    return a < b;
  });
  std::vector<int> rank(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    rank[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  }
  return rank;
}

}  // namespace optalloc::rt

#pragma once
// System model (paper Section 2): architecture A = (P, K, kappa) of ECUs
// and communication media, and task set T of periodic/sporadic tasks with
// per-ECU WCETs, deadlines, placement restrictions, separation sets
// (redundant tasks), memory demands, and messages.
//
// All times are integer ticks. Workloads pick the tick granularity (the
// bundled Tindell-style system uses 1 tick = 0.25 ms).

#include <cstdint>
#include <string>
#include <vector>

namespace optalloc::rt {

using Ticks = std::int64_t;

/// WCET marker for "task cannot run on this ECU".
inline constexpr Ticks kForbidden = -1;

/// A message emitted by a task at the end of each activation
/// (element of gamma_i: target, size, deadline).
struct Message {
  int target_task = -1;          ///< receiving task index in the TaskSet
  std::int64_t size_bytes = 0;   ///< payload size
  Ticks deadline = 0;            ///< end-to-end deadline Delta_m
  Ticks release_jitter = 0;      ///< inherited release jitter J_m
};

/// One task tau_i = (t, c, gamma, pi, delta, d).
struct Task {
  std::string name;
  Ticks period = 0;              ///< t_i: period / min inter-arrival
  std::vector<Ticks> wcet;       ///< c_i(p) per ECU; kForbidden = disallowed
  Ticks deadline = 0;            ///< d_i (constrained deadline: d <= t)
  Ticks release_jitter = 0;      ///< J_i: release delay bound (Sec. 2's
                                 ///< "many more temporal properties")
  std::vector<int> separated_from;  ///< delta_i: must not share an ECU with
  std::vector<Message> messages;    ///< gamma_i
  std::int64_t memory = 0;       ///< memory footprint (per-ECU budgets)

  bool allowed_on(int ecu) const {
    return ecu >= 0 && ecu < static_cast<int>(wcet.size()) &&
           wcet[static_cast<std::size_t>(ecu)] != kForbidden;
  }
};

struct TaskSet {
  std::vector<Task> tasks;

  /// Global message id for (task, message-index); messages are flattened
  /// in task order for indexing response times and routes.
  struct MsgRef {
    int task;
    int index;  ///< index into tasks[task].messages
  };
  std::vector<MsgRef> message_refs() const {
    std::vector<MsgRef> refs;
    for (int i = 0; i < static_cast<int>(tasks.size()); ++i) {
      const auto n = static_cast<int>(tasks[static_cast<std::size_t>(i)]
                                          .messages.size());
      for (int j = 0; j < n; ++j) refs.push_back({i, j});
    }
    return refs;
  }
  const Message& message(MsgRef r) const {
    return tasks[static_cast<std::size_t>(r.task)]
        .messages[static_cast<std::size_t>(r.index)];
  }
};

enum class MediumType {
  kTokenRing,  ///< TDMA: per-ECU slots, round length Lambda = sum of slots
  kCan,        ///< priority-driven (CSMA/CR)
};

/// One communication medium k in K with its kappa parameters.
struct Medium {
  std::string name;
  MediumType type = MediumType::kTokenRing;
  std::vector<int> ecus;  ///< connected ECUs (the set k subseteq P)

  // Token ring parameters.
  Ticks ring_byte_ticks = 1;   ///< transmission ticks per payload byte
  Ticks slot_min = 1;          ///< minimum slot length
  Ticks slot_max = 64;         ///< maximum slot length (bounds the search)

  // CAN parameters: a frame of B bits takes
  // ceil(B * can_bit_ticks / can_bits_per_tick) ticks, so both slow buses
  // (ticks per bit > 1) and fast buses (bits per tick > 1) are expressible
  // on an integer tick base.
  Ticks can_bit_ticks = 1;
  Ticks can_bits_per_tick = 1;
  /// Model the non-preemptive blocking of CAN arbitration: a frame that
  /// just won the bus cannot be preempted, so a message waits for the
  /// longest lower-priority frame on the bus (Tindell's B_m term). Off by
  /// default — the paper's eq. (2) omits it; enabling it is the
  /// "blocking factors" extension the paper mentions in Section 2.
  bool can_blocking = false;

  Ticks gateway_cost = 0;      ///< serv: cost of crossing a gateway from
                               ///< this medium (store-and-forward overhead)

  bool connects(int ecu) const {
    for (const int e : ecus) {
      if (e == ecu) return true;
    }
    return false;
  }
};

/// Hierarchical architecture: media are nodes; two media sharing an ECU are
/// linked through that gateway ECU (the paper allows exactly one gateway
/// between two media).
struct Architecture {
  int num_ecus = 0;
  std::vector<Medium> media;
  std::vector<std::int64_t> ecu_memory;  ///< capacity per ECU; 0 = unlimited
  std::vector<char> gateway_only;        ///< ECU cannot host tasks (arch A/B)

  bool can_host_tasks(int ecu) const {
    return gateway_only.empty() ||
           !gateway_only[static_cast<std::size_t>(ecu)];
  }

  std::vector<int> media_of(int ecu) const {
    std::vector<int> result;
    for (int m = 0; m < static_cast<int>(media.size()); ++m) {
      if (media[static_cast<std::size_t>(m)].connects(ecu)) result.push_back(m);
    }
    return result;
  }

  /// The unique gateway ECU linking two media, or -1 if they do not touch.
  int gateway_between(int m1, int m2) const {
    for (const int e : media[static_cast<std::size_t>(m1)].ecus) {
      if (media[static_cast<std::size_t>(m2)].connects(e)) return e;
    }
    return -1;
  }

  bool is_gateway(int ecu) const { return media_of(ecu).size() >= 2; }
};

/// A full solution: the mappings Pi (tasks->ECUs), Gamma (messages->ordered
/// media paths), per-message per-medium deadline budgets, and TDMA slot
/// lengths. Produced by the optimizer's decoder and by the heuristics;
/// consumed by the independent verifier.
struct Allocation {
  std::vector<int> task_ecu;  ///< Pi

  /// Route per global message id: media indices in transmission order
  /// (empty = intra-ECU delivery, no medium used).
  std::vector<std::vector<int>> msg_route;

  /// Local deadline d^k_m per global message id, aligned with msg_route.
  std::vector<std::vector<Ticks>> msg_local_deadline;

  /// Slot length per (medium, position in medium.ecus); only meaningful
  /// for token rings.
  std::vector<std::vector<Ticks>> slots;

  /// Priority rank per task (lower = higher priority). Deadline-monotonic
  /// with ties broken by the optimizer (paper eqs. 9-10). Empty = derive
  /// deadline-monotonic order with index tie-break.
  std::vector<int> task_prio;
};

}  // namespace optalloc::rt

#pragma once
// Response-time analysis primitives (paper Section 2):
//   * eq. (1): fixed-priority preemptive task response times
//   * eq. (2): priority-bus (CAN) message response times
//   * eq. (3): TDMA (token ring) message response times with slot blocking
// plus CAN frame timing with worst-case stuff bits (Tindell [3]).
//
// All fixed points are computed exactly over integers; divergence beyond
// the deadline returns std::nullopt (unschedulable).

#include <optional>
#include <span>
#include <vector>

#include "rt/model.hpp"

namespace optalloc::rt {

/// An interfering entity for response-time fixed points: WCET/transmission
/// time, period, and release jitter.
struct Interferer {
  Ticks cost = 0;    ///< c_j (task WCET or message transmission time rho)
  Ticks period = 0;  ///< t_j
  Ticks jitter = 0;  ///< release jitter J_j (0 for tasks in the base model)
};

/// eq. (1): r = c + sum_{j in hp} ceil((r + J_j)/t_j) c_j, iterated from
/// r = c until fixed point or r > bound.
std::optional<Ticks> response_time_fp(Ticks own_cost,
                                      std::span<const Interferer> hp,
                                      Ticks bound);

/// eq. (3): r = rho + I(r) + ceil(r/Lambda)(Lambda - own_slot). `hp` are
/// higher-priority messages queued at the same station.
std::optional<Ticks> tdma_response_time(Ticks rho,
                                        std::span<const Interferer> hp,
                                        Ticks round_length, Ticks own_slot,
                                        Ticks bound);

/// Worst-case bits on the wire for one CAN 2.0A data frame carrying
/// `payload` bytes (0..8): 47 framing bits + 8*payload, plus worst-case
/// stuff bits floor((34 + 8*payload - 1)/4).
std::int64_t can_frame_bits(std::int64_t payload);

/// Transmission time of a message on a medium (rho_m): CAN messages are
/// split into ceil(size/8)-byte frames; token-ring messages cost
/// size * ring_byte_ticks.
Ticks transmission_ticks(const Medium& medium, std::int64_t size_bytes);

/// Bus utilisation of a set of (cost, period) pairs in parts-per-thousand,
/// rounded up — the integer cost function for the paper's U_CAN objective.
std::int64_t utilization_ppm(std::span<const Interferer> msgs);

/// Deadline-monotonic priority order with index tie-break: returns ranks
/// (rank[i] < rank[j] means tau_i has higher priority).
std::vector<int> deadline_monotonic_ranks(const TaskSet& ts);

}  // namespace optalloc::rt

#pragma once
// Human-readable schedulability report for an allocation: per-ECU task
// tables with response times and slack, per-medium message tables with
// routes, budgets, jitters and responses, and TDMA round summaries.

#include <string>
#include <string_view>

#include "rt/verify.hpp"

namespace optalloc::rt {

/// Render a full report. Runs the verifier internally; infeasible
/// allocations list their violations at the top. A non-empty `footer`
/// (e.g. the optimizer's OptimizeStats::summary()) is appended as a
/// "search effort" trailer.
std::string render_report(const TaskSet& ts, const Architecture& arch,
                          const Allocation& allocation,
                          std::string_view footer = {});

}  // namespace optalloc::rt

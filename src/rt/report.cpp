#include "rt/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace optalloc::rt {

namespace {

void line(std::ostringstream& out, const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out << buf << '\n';
}

}  // namespace

std::string render_report(const TaskSet& ts, const Architecture& arch,
                          const Allocation& allocation,
                          std::string_view footer) {
  const VerifyReport report = verify(ts, arch, allocation);
  std::ostringstream out;

  line(out, "=== allocation report: %s ===",
       report.feasible ? "FEASIBLE" : "INFEASIBLE");
  for (const std::string& v : report.violations) {
    line(out, "  violation: %s", v.c_str());
  }

  // Per-ECU task tables sorted by priority.
  for (int e = 0; e < arch.num_ecus; ++e) {
    std::vector<std::size_t> on_ecu;
    for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
      if (allocation.task_ecu[i] == e) on_ecu.push_back(i);
    }
    if (on_ecu.empty()) continue;
    std::sort(on_ecu.begin(), on_ecu.end(), [&](std::size_t a, std::size_t b) {
      if (allocation.task_prio.empty()) return a < b;
      return allocation.task_prio[a] < allocation.task_prio[b];
    });
    double util = 0.0;
    for (const std::size_t i : on_ecu) {
      util += static_cast<double>(
                  ts.tasks[i].wcet[static_cast<std::size_t>(e)]) /
              static_cast<double>(ts.tasks[i].period);
    }
    line(out, "ECU %d  (%zu tasks, utilization %.1f%%)", e, on_ecu.size(),
         100.0 * util);
    line(out, "  %-14s %8s %8s %8s %8s %8s", "task", "T", "C", "D", "R",
         "slack");
    for (const std::size_t i : on_ecu) {
      const Task& t = ts.tasks[i];
      const Ticks r = report.task_response.empty()
                          ? -1
                          : report.task_response[i];
      line(out, "  %-14s %8lld %8lld %8lld %8lld %8lld", t.name.c_str(),
           static_cast<long long>(t.period),
           static_cast<long long>(t.wcet[static_cast<std::size_t>(e)]),
           static_cast<long long>(t.deadline), static_cast<long long>(r),
           static_cast<long long>(r < 0 ? -1 : t.deadline - r));
    }
  }

  // Media summaries.
  const auto refs = ts.message_refs();
  for (std::size_t k = 0; k < arch.media.size(); ++k) {
    const Medium& medium = arch.media[k];
    if (medium.type == MediumType::kTokenRing) {
      std::string slots;
      if (k < allocation.slots.size()) {
        for (const Ticks s : allocation.slots[k]) {
          slots += " " + std::to_string(s);
        }
      }
      line(out, "medium %s  (token ring, Lambda=%lld, slots:%s)",
           medium.name.c_str(),
           static_cast<long long>(
               k < report.trt_per_medium.size() ? report.trt_per_medium[k]
                                                : 0),
           slots.c_str());
    } else {
      line(out, "medium %s  (CAN, load %.3f)", medium.name.c_str(),
           static_cast<double>(report.max_can_util_ppm) / 1000.0);
    }
    for (std::size_t g = 0; g < refs.size(); ++g) {
      const auto& route = allocation.msg_route[g];
      for (std::size_t l = 0; l < route.size(); ++l) {
        if (route[l] != static_cast<int>(k)) continue;
        const auto& leg = report.msg_legs[g][l];
        line(out,
             "  msg %-3zu %-12s leg %zu/%zu  d=%-6lld J=%-6lld r=%-6lld %s",
             g, ts.tasks[static_cast<std::size_t>(refs[g].task)].name.c_str(),
             l + 1, route.size(), static_cast<long long>(leg.local_deadline),
             static_cast<long long>(leg.jitter),
             static_cast<long long>(leg.response), leg.ok ? "ok" : "MISS");
      }
    }
  }
  if (!footer.empty()) {
    out << "search effort: " << footer << '\n';
  }
  return out.str();
}

}  // namespace optalloc::rt

#include "rt/sim.hpp"

#include <algorithm>
#include <numeric>

#include "rt/analysis.hpp"
#include "rt/verify.hpp"

namespace optalloc::rt {

namespace {

struct Job {
  int task = -1;
  Ticks release = 0;
  Ticks remaining = 0;
};

struct Frame {
  int msg = -1;       ///< global message id
  int leg = 0;        ///< index into the route
  Ticks arrival = 0;  ///< time the frame entered this leg's queue
  Ticks remaining = 0;
};

Ticks derive_horizon(const TaskSet& ts, const SimOptions& options) {
  if (options.horizon > 0) return options.horizon;
  Ticks l = 1;
  for (const Task& t : ts.tasks) {
    const Ticks g = std::gcd(l, t.period);
    if (l / g > options.max_horizon / std::max<Ticks>(1, t.period)) {
      return options.max_horizon;  // hyperperiod overflows the cap
    }
    l = l / g * t.period;
    if (l >= options.max_horizon / 2) return options.max_horizon;
  }
  Ticks dmax = 0;
  for (const Task& t : ts.tasks) dmax = std::max(dmax, t.deadline);
  return std::min(options.max_horizon, 2 * l + dmax);
}

}  // namespace

SimReport simulate(const TaskSet& ts, const Architecture& arch,
                   const Allocation& allocation,
                   const SimOptions& options) {
  SimReport report;
  const auto num_tasks = static_cast<int>(ts.tasks.size());
  const auto num_media = static_cast<int>(arch.media.size());
  const auto refs = ts.message_refs();
  const auto num_msgs = static_cast<int>(refs.size());
  const std::vector<int> msg_rank = message_dm_ranks(ts);
  Rng rng(options.seed);

  report.horizon = derive_horizon(ts, options);
  report.task_response.assign(static_cast<std::size_t>(num_tasks), -1);
  report.jobs_finished.assign(static_cast<std::size_t>(num_tasks), 0);
  report.msg_leg_response.resize(static_cast<std::size_t>(num_msgs));
  for (int g = 0; g < num_msgs; ++g) {
    report.msg_leg_response[static_cast<std::size_t>(g)].assign(
        allocation.msg_route[static_cast<std::size_t>(g)].size(), -1);
  }

  std::vector<int> prio = allocation.task_prio;
  if (prio.empty()) prio = deadline_monotonic_ranks(ts);

  auto draw_jitter = [&](Ticks j) -> Ticks {
    if (j <= 0) return 0;
    return options.randomize_jitter ? rng.uniform(0, j) : j;
  };

  // Release bookkeeping.
  std::vector<Ticks> next_release(static_cast<std::size_t>(num_tasks));
  std::vector<Ticks> next_base(static_cast<std::size_t>(num_tasks), 0);
  for (int i = 0; i < num_tasks; ++i) {
    next_release[static_cast<std::size_t>(i)] =
        draw_jitter(ts.tasks[static_cast<std::size_t>(i)].release_jitter);
  }

  // Active jobs per ECU.
  std::vector<std::vector<Job>> cpu(static_cast<std::size_t>(arch.num_ecus));

  // Bus queues: token rings per (medium, station position); CAN per medium.
  std::vector<std::vector<std::vector<Frame>>> ring_queue(
      static_cast<std::size_t>(num_media));
  std::vector<std::vector<Frame>> can_queue(
      static_cast<std::size_t>(num_media));
  std::vector<int> can_ongoing(static_cast<std::size_t>(num_media), -1);
  std::vector<Ticks> lambda(static_cast<std::size_t>(num_media), 0);
  std::vector<std::vector<Ticks>> slot_prefix(
      static_cast<std::size_t>(num_media));
  for (int k = 0; k < num_media; ++k) {
    const Medium& medium = arch.media[static_cast<std::size_t>(k)];
    if (medium.type == MediumType::kTokenRing) {
      ring_queue[static_cast<std::size_t>(k)].resize(medium.ecus.size());
      Ticks acc = 0;
      for (std::size_t j = 0; j < medium.ecus.size(); ++j) {
        slot_prefix[static_cast<std::size_t>(k)].push_back(acc);
        if (j < allocation.slots[static_cast<std::size_t>(k)].size()) {
          acc += allocation.slots[static_cast<std::size_t>(k)][j];
        }
      }
      lambda[static_cast<std::size_t>(k)] = acc;
    }
  }

  auto station_position = [&](int k, int ecu) -> int {
    const Medium& medium = arch.media[static_cast<std::size_t>(k)];
    for (std::size_t j = 0; j < medium.ecus.size(); ++j) {
      if (medium.ecus[j] == ecu) return static_cast<int>(j);
    }
    return -1;
  };

  auto enqueue_leg = [&](int g, int leg, Ticks arrival) {
    const auto& route = allocation.msg_route[static_cast<std::size_t>(g)];
    const int k = route[static_cast<std::size_t>(leg)];
    const Medium& medium = arch.media[static_cast<std::size_t>(k)];
    const Ticks rho =
        transmission_ticks(medium, ts.message(refs[static_cast<std::size_t>(
                                       g)]).size_bytes);
    if (medium.type == MediumType::kCan) {
      can_queue[static_cast<std::size_t>(k)].push_back(
          {g, leg, arrival, rho});
      return;
    }
    int station;
    if (leg == 0) {
      station = allocation.task_ecu[static_cast<std::size_t>(
          refs[static_cast<std::size_t>(g)].task)];
    } else {
      station = arch.gateway_between(route[static_cast<std::size_t>(leg - 1)],
                                     route[static_cast<std::size_t>(leg)]);
    }
    const int pos = station_position(k, station);
    if (pos < 0) {
      report.any_deadline_miss = true;
      report.misses.push_back("msg " + std::to_string(g) +
                              ": station not on medium");
      return;
    }
    ring_queue[static_cast<std::size_t>(k)][static_cast<std::size_t>(pos)]
        .push_back({g, leg, arrival, rho});
  };

  auto deliver = [&](const Frame& f, Ticks now) {
    const Ticks delay = now - f.arrival;
    auto& worst =
        report.msg_leg_response[static_cast<std::size_t>(f.msg)]
                               [static_cast<std::size_t>(f.leg)];
    worst = std::max(worst, delay);
    const auto& route = allocation.msg_route[static_cast<std::size_t>(f.msg)];
    if (f.leg + 1 < static_cast<int>(route.size())) {
      const Ticks serv =
          arch.media[static_cast<std::size_t>(
                         route[static_cast<std::size_t>(f.leg)])]
              .gateway_cost;
      enqueue_leg(f.msg, f.leg + 1, now + serv);
    }
  };

  /// Highest-priority pending frame (arrival <= now); -1 if none.
  auto pick_frame = [&](const std::vector<Frame>& q, Ticks now) -> int {
    int best = -1;
    for (int i = 0; i < static_cast<int>(q.size()); ++i) {
      if (q[static_cast<std::size_t>(i)].arrival > now) continue;
      if (best < 0 ||
          msg_rank[static_cast<std::size_t>(
              q[static_cast<std::size_t>(i)].msg)] <
              msg_rank[static_cast<std::size_t>(
                  q[static_cast<std::size_t>(best)].msg)]) {
        best = i;
      }
    }
    return best;
  };

  for (Ticks now = 0; now < report.horizon; ++now) {
    // 1. Job releases.
    for (int i = 0; i < num_tasks; ++i) {
      const Task& t = ts.tasks[static_cast<std::size_t>(i)];
      while (next_release[static_cast<std::size_t>(i)] <= now) {
        const int ecu = allocation.task_ecu[static_cast<std::size_t>(i)];
        auto& jobs = cpu[static_cast<std::size_t>(ecu)];
        const bool overrun =
            std::any_of(jobs.begin(), jobs.end(),
                        [&](const Job& j) { return j.task == i; });
        if (overrun) {
          report.any_deadline_miss = true;
          report.misses.push_back("task " + t.name + ": overrun at t=" +
                                  std::to_string(now));
          std::erase_if(jobs, [&](const Job& j) { return j.task == i; });
        }
        jobs.push_back({i, next_release[static_cast<std::size_t>(i)],
                        t.wcet[static_cast<std::size_t>(ecu)]});
        next_base[static_cast<std::size_t>(i)] += t.period;
        next_release[static_cast<std::size_t>(i)] =
            next_base[static_cast<std::size_t>(i)] +
            draw_jitter(t.release_jitter);
      }
    }

    // 2. One tick of execution on every ECU (highest priority first).
    for (auto& jobs : cpu) {
      if (jobs.empty()) continue;
      auto best = jobs.begin();
      for (auto it = jobs.begin(); it != jobs.end(); ++it) {
        if (prio[static_cast<std::size_t>(it->task)] <
            prio[static_cast<std::size_t>(best->task)]) {
          best = it;
        }
      }
      if (--best->remaining == 0) {
        const int i = best->task;
        const Task& t = ts.tasks[static_cast<std::size_t>(i)];
        const Ticks response = now + 1 - best->release;
        auto& worst = report.task_response[static_cast<std::size_t>(i)];
        worst = std::max(worst, response);
        ++report.jobs_finished[static_cast<std::size_t>(i)];
        if (response > t.deadline) {
          report.any_deadline_miss = true;
          report.misses.push_back("task " + t.name + ": response " +
                                  std::to_string(response) + " > deadline");
        }
        // Emit messages at end of computation.
        for (std::size_t m = 0; m < t.messages.size(); ++m) {
          int g = -1;
          for (int gg = 0; gg < num_msgs; ++gg) {
            if (refs[static_cast<std::size_t>(gg)].task == i &&
                refs[static_cast<std::size_t>(gg)].index ==
                    static_cast<int>(m)) {
              g = gg;
              break;
            }
          }
          if (!allocation.msg_route[static_cast<std::size_t>(g)].empty()) {
            enqueue_leg(g, 0, now + 1);
          }
        }
        jobs.erase(best);
      }
    }

    // 3. One tick of every medium.
    for (int k = 0; k < num_media; ++k) {
      const Medium& medium = arch.media[static_cast<std::size_t>(k)];
      if (medium.type == MediumType::kTokenRing) {
        if (lambda[static_cast<std::size_t>(k)] <= 0) continue;
        const Ticks pos = now % lambda[static_cast<std::size_t>(k)];
        // Owner station: last prefix <= pos with a non-empty slot.
        int owner = -1;
        const auto& prefix = slot_prefix[static_cast<std::size_t>(k)];
        for (std::size_t j = 0; j < prefix.size(); ++j) {
          const Ticks len =
              allocation.slots[static_cast<std::size_t>(k)][j];
          if (pos >= prefix[j] && pos < prefix[j] + len) {
            owner = static_cast<int>(j);
            break;
          }
        }
        if (owner < 0) continue;
        auto& q = ring_queue[static_cast<std::size_t>(k)]
                            [static_cast<std::size_t>(owner)];
        const int f = pick_frame(q, now);
        if (f < 0) continue;
        if (--q[static_cast<std::size_t>(f)].remaining == 0) {
          deliver(q[static_cast<std::size_t>(f)], now + 1);
          q.erase(q.begin() + f);
        }
      } else {
        auto& q = can_queue[static_cast<std::size_t>(k)];
        int f = -1;
        if (medium.can_blocking) {
          // Non-preemptive: continue the ongoing frame if any.
          if (can_ongoing[static_cast<std::size_t>(k)] >= 0) {
            // Find it by message id (indices shift on erase).
            for (int i = 0; i < static_cast<int>(q.size()); ++i) {
              if (q[static_cast<std::size_t>(i)].msg ==
                  can_ongoing[static_cast<std::size_t>(k)]) {
                f = i;
                break;
              }
            }
          }
          if (f < 0) {
            f = pick_frame(q, now);
            if (f >= 0) {
              can_ongoing[static_cast<std::size_t>(k)] =
                  q[static_cast<std::size_t>(f)].msg;
            }
          }
        } else {
          f = pick_frame(q, now);  // idealized preemptable frames (eq. 2)
        }
        if (f < 0) continue;
        if (--q[static_cast<std::size_t>(f)].remaining == 0) {
          deliver(q[static_cast<std::size_t>(f)], now + 1);
          q.erase(q.begin() + f);
          can_ongoing[static_cast<std::size_t>(k)] = -1;
        }
      }
    }
  }
  return report;
}

}  // namespace optalloc::rt

#pragma once
// Thread-safety capability annotations: a thin macro layer over Clang's
// -Wthread-safety attributes so the lock discipline of every concurrent
// data structure (scheduler, cache, clause pools, metrics registry, trace
// sink...) is machine-checked at compile time instead of only observed
// dynamically by TSan. The macros expand to nothing on compilers without
// the attributes (GCC), so the annotated code stays portable; the
// `analyze` CMake preset builds src/ with clang and
// -Werror=thread-safety, turning any violation into a build break.
//
// Vocabulary (see DESIGN.md §13 for the per-subsystem capability map):
//   OPTALLOC_CAPABILITY("mutex")  — a class whose instances are lockable
//   OPTALLOC_SCOPED_CAPABILITY    — an RAII guard that holds a capability
//   OPTALLOC_GUARDED_BY(mu)      — data readable/writable only under mu
//   OPTALLOC_PT_GUARDED_BY(mu)   — pointee guarded by mu (pointer free)
//   OPTALLOC_REQUIRES(mu)        — caller must already hold mu
//   OPTALLOC_ACQUIRE(mu) / OPTALLOC_RELEASE(mu)
//                                 — function takes / drops the capability
//   OPTALLOC_TRY_ACQUIRE(b, mu)  — conditional acquisition (returns b)
//   OPTALLOC_EXCLUDES(mu)        — caller must NOT hold mu (deadlock
//                                   guard for self-calling paths)
//   OPTALLOC_ASSERT_CAPABILITY(mu)
//                                 — runtime-checked "mu is held here"
//   OPTALLOC_RETURN_CAPABILITY(mu)
//                                 — accessor returning a reference to mu
//   OPTALLOC_NO_THREAD_SAFETY_ANALYSIS
//                                 — opt one function out (document why!)
//
// Annotate with the *public* alias of a guard where one exists; analysis
// matches capabilities syntactically (this->mu_ vs other->mu_ are
// distinct), so guards crossing object boundaries — e.g. Scheduler::Job
// fields protected by the owning Scheduler's mutex — cannot be expressed
// as GUARDED_BY and are instead enforced through OPTALLOC_REQUIRES
// helper functions on the owner (plus a comment on the field).

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define OPTALLOC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef OPTALLOC_THREAD_ANNOTATION
#define OPTALLOC_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define OPTALLOC_CAPABILITY(x) OPTALLOC_THREAD_ANNOTATION(capability(x))
#define OPTALLOC_SCOPED_CAPABILITY OPTALLOC_THREAD_ANNOTATION(scoped_lockable)
#define OPTALLOC_GUARDED_BY(x) OPTALLOC_THREAD_ANNOTATION(guarded_by(x))
#define OPTALLOC_PT_GUARDED_BY(x) OPTALLOC_THREAD_ANNOTATION(pt_guarded_by(x))
#define OPTALLOC_REQUIRES(...) \
  OPTALLOC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define OPTALLOC_REQUIRES_SHARED(...) \
  OPTALLOC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define OPTALLOC_ACQUIRE(...) \
  OPTALLOC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define OPTALLOC_ACQUIRE_SHARED(...) \
  OPTALLOC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define OPTALLOC_RELEASE(...) \
  OPTALLOC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define OPTALLOC_RELEASE_SHARED(...) \
  OPTALLOC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define OPTALLOC_TRY_ACQUIRE(...) \
  OPTALLOC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define OPTALLOC_EXCLUDES(...) \
  OPTALLOC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define OPTALLOC_ASSERT_CAPABILITY(x) \
  OPTALLOC_THREAD_ANNOTATION(assert_capability(x))
#define OPTALLOC_RETURN_CAPABILITY(x) \
  OPTALLOC_THREAD_ANNOTATION(lock_returned(x))
#define OPTALLOC_NO_THREAD_SAFETY_ANALYSIS \
  OPTALLOC_THREAD_ANNOTATION(no_thread_safety_analysis)

#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "obs/trace.hpp"
#include "util/mutex.hpp"

namespace optalloc {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kSilent};
/// Serializes whole-line writes to stderr (the guarded "data" is the
/// stream position, which the annotations cannot name — write_line is the
/// REQUIRES-annotated choke point instead).
util::Mutex g_mutex;

void write_line(const char* line, std::size_t len) OPTALLOC_REQUIRES(g_mutex) {
  std::fwrite(line, 1, len, stderr);
  std::fputc('\n', stderr);
}

void vlog(const char* suffix, const char* fmt, std::va_list args) {
  // Format into a local buffer first so the mutex only covers the write,
  // and one message is always one uninterleaved line.
  char line[1024];
  int n = std::snprintf(line, sizeof line, "[optalloc t%d%s] ",
                        obs::thread_ordinal(), suffix);
  if (n < 0) return;
  auto off = static_cast<std::size_t>(n);
  if (off < sizeof line) {
    n = std::vsnprintf(line + off, sizeof line - off, fmt, args);
    if (n > 0) off = std::min(off + static_cast<std::size_t>(n),
                              sizeof line - 1);
  }
  util::MutexLock lock(g_mutex);
  write_line(line, off);
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_info(const char* fmt, ...) {
  if (log_level() < LogLevel::kInfo) return;
  std::va_list args;
  va_start(args, fmt);
  vlog("", fmt, args);
  va_end(args);
}

void log_debug(const char* fmt, ...) {
  if (log_level() < LogLevel::kDebug) return;
  std::va_list args;
  va_start(args, fmt);
  vlog(":debug", fmt, args);
  va_end(args);
}

}  // namespace optalloc

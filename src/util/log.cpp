#include "util/log.hpp"

#include <cstdio>

namespace optalloc {
namespace {
LogLevel g_level = LogLevel::kSilent;

void vlog(const char* prefix, const char* fmt, std::va_list args) {
  std::fputs(prefix, stderr);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_info(const char* fmt, ...) {
  if (g_level < LogLevel::kInfo) return;
  std::va_list args;
  va_start(args, fmt);
  vlog("[optalloc] ", fmt, args);
  va_end(args);
}

void log_debug(const char* fmt, ...) {
  if (g_level < LogLevel::kDebug) return;
  std::va_list args;
  va_start(args, fmt);
  vlog("[optalloc:debug] ", fmt, args);
  va_end(args);
}

}  // namespace optalloc

#pragma once
// Wall-clock stopwatch used by the optimizer and the bench harness to report
// per-phase runtimes the way the paper's tables do.

#include <chrono>
#include <string>

namespace optalloc {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/restart, in seconds.
  double seconds() const;

  /// Elapsed time formatted as "H:MM:SS" or "S.mmm s" for sub-minute spans,
  /// matching the granularity of the paper's result tables.
  std::string pretty() const;

  static std::string pretty_seconds(double s);

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace optalloc

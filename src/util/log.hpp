#pragma once
// Minimal leveled logging. Off by default so library users (and benchmarks)
// see nothing unless they opt in; the CLI examples turn it on with -v.

#include <cstdarg>

namespace optalloc {

enum class LogLevel { kSilent = 0, kInfo = 1, kDebug = 2 };

/// Global verbosity. Not thread-local: the solver is single-threaded and
/// multi-threaded benches keep logging silent.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging; a trailing newline is appended.
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace optalloc

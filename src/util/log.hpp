#pragma once
// Minimal leveled logging. Off by default so library users (and benchmarks)
// see nothing unless they opt in; the CLI examples turn it on with -v.
//
// Thread-safe: the level is atomic and each message is formatted into a
// line buffer, then written to stderr in one call under a mutex with a
// thread tag ("[optalloc t2]"), so parallel portfolio workers can log
// without interleaving. The tag ordinal matches the "tid" field of the
// structured trace (obs::thread_ordinal).

#include <cstdarg>

namespace optalloc {

enum class LogLevel { kSilent = 0, kInfo = 1, kDebug = 2 };

/// Global verbosity (atomic; safe to flip while workers run).
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging; a trailing newline is appended.
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace optalloc

#pragma once
// Small integer helpers shared by the response-time analysis and the
// encoder. All arithmetic in the library is over signed 64-bit integers;
// helpers assert against overflow in debug builds.

#include <cassert>
#include <cstdint>
#include <optional>

namespace optalloc {

/// ceil(a / b) for a >= 0, b > 0 — the ceiling term of response-time
/// analysis (paper eq. 1). Written quotient-plus-remainder instead of the
/// usual (a + b - 1) / b so the numerator cannot overflow for any valid
/// input (the fixed-point iterations feed near-INT64_MAX iterates here).
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  assert(a >= 0 && b > 0);
  return a / b + (a % b != 0 ? 1 : 0);
}

/// Number of bits needed to represent v (v >= 0) in an unsigned binary
/// encoding; bits_for(0) == 1 so every variable has at least one bit.
constexpr int bits_for(std::int64_t v) {
  assert(v >= 0);
  int bits = 1;
  while ((std::int64_t{1} << bits) <= v) ++bits;
  return bits;
}

/// Overflow guard: true iff a*b fits in int64 (no UB on overflow).
inline bool mul_fits(std::int64_t a, std::int64_t b) {
  std::int64_t out;
  return !__builtin_mul_overflow(a, b, &out);
}

/// a + b, or nullopt when the sum leaves int64. The fixed-point iterations
/// of the response-time analysis accumulate through these so a diverging
/// interference sum surfaces as "no bound" instead of wrapping (signed
/// overflow is UB, and a wrapped negative response time would silently
/// pass every deadline check).
inline std::optional<std::int64_t> checked_add(std::int64_t a,
                                               std::int64_t b) {
  std::int64_t out;
  if (__builtin_add_overflow(a, b, &out)) return std::nullopt;
  return out;
}

/// a * b, or nullopt when the product leaves int64.
inline std::optional<std::int64_t> checked_mul(std::int64_t a,
                                               std::int64_t b) {
  std::int64_t out;
  if (__builtin_mul_overflow(a, b, &out)) return std::nullopt;
  return out;
}

}  // namespace optalloc

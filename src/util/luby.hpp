#pragma once
// The Luby restart sequence (1,1,2,1,1,2,4,...) used by the CDCL solver.
// Luby et al. showed this universal strategy is within a log factor of the
// optimal restart schedule for Las Vegas algorithms.

#include <cstdint>

namespace optalloc {

/// i-th element (1-based) of the Luby sequence.
constexpr std::uint64_t luby(std::uint64_t i) {
  // Find the subsequence that contains index i: the sequence is composed of
  // blocks; block k ends at index 2^k - 1 and its last element is 2^(k-1).
  std::uint64_t size = 1;
  std::uint64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return std::uint64_t{1} << seq;
}

}  // namespace optalloc

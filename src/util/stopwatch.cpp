#include "util/stopwatch.hpp"

#include <cmath>
#include <cstdio>

namespace optalloc {

double Stopwatch::seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

std::string Stopwatch::pretty() const { return pretty_seconds(seconds()); }

std::string Stopwatch::pretty_seconds(double s) {
  char buf[64];
  if (s < 60.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", s);
  } else {
    const long total = static_cast<long>(std::llround(s));
    std::snprintf(buf, sizeof buf, "%ld:%02ld:%02ld", total / 3600,
                  (total / 60) % 60, total % 60);
  }
  return buf;
}

}  // namespace optalloc

#pragma once
// Deterministic, fast pseudo-random number generation (xoshiro256**).
//
// Every stochastic component in the library (simulated annealing, workload
// generation, fuzz tests) takes an explicit Rng so results are reproducible
// from a single seed.

#include <cstdint>
#include <limits>

namespace optalloc {

/// xoshiro256** by Blackman & Vigna: small state, excellent statistical
/// quality, and fully deterministic across platforms (unlike
/// std::default_random_engine, whose meaning is implementation-defined).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a single seed via splitmix64, which
  /// guarantees a well-mixed non-zero state for any seed value.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  std::uint64_t operator()() { return next(); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Pick an index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

 private:
  std::uint64_t state_[4];
};

}  // namespace optalloc

#pragma once
// Annotated mutex + RAII guard: std::mutex / std::unique_lock with the
// thread-safety capability attributes attached, so clang's static
// analysis (the `analyze` preset, -Werror=thread-safety) can prove every
// OPTALLOC_GUARDED_BY field is only touched with the right lock held.
//
// Use these instead of std::mutex / std::lock_guard anywhere a field is
// annotated: std::lock_guard lives in a system header, so the analysis
// never sees its lock()/unlock() calls and would flag every access under
// it as unguarded. MutexLock is the drop-in replacement; it also carries
// the condition-variable wait shims (std::condition_variable insists on
// std::unique_lock<std::mutex>, which MutexLock owns internally).
//
// Zero-cost: both types are exactly their std counterparts plus
// attributes; everything inlines away.

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace optalloc::util {

class OPTALLOC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() OPTALLOC_ACQUIRE() { mu_.lock(); }
  void unlock() OPTALLOC_RELEASE() { mu_.unlock(); }
  bool try_lock() OPTALLOC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for APIs that demand it. Using it to lock
  /// bypasses the analysis — prefer MutexLock.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over an annotated Mutex (the std::lock_guard/std::unique_lock
/// replacement). Holds the capability from construction to destruction;
/// wait()/wait_until() keep the capability claim across the condition
/// variable's internal unlock/relock, which is exactly the guarantee a
/// returning wait provides.
class OPTALLOC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) OPTALLOC_ACQUIRE(mu)
      : lock_(mu.native()) {}
  ~MutexLock() OPTALLOC_RELEASE() = default;
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  template <typename Predicate>
  void wait(std::condition_variable& cv, Predicate pred) {
    cv.wait(lock_, std::move(pred));
  }
  template <typename Clock, typename Duration, typename Predicate>
  bool wait_until(std::condition_variable& cv,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Predicate pred) {
    return cv.wait_until(lock_, deadline, std::move(pred));
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace optalloc::util

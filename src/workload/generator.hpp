#pragma once
// Synthetic workload generation: UUniFast utilization splits, task chains
// with messages, heterogeneous WCETs, placement restrictions — the raw
// material for the benchmark instances.
//
// Time base: 1 tick = 0.25 ms. The Tindell-style system's TRT optimum
// then lands in the tens of ticks (= a few ms), matching the paper's
// scale while keeping the bit-blasted arithmetic narrow.

#include <cstdint>

#include "alloc/problem.hpp"
#include "util/rng.hpp"

namespace optalloc::workload {

inline constexpr double kMsPerTick = 0.25;

/// Ticks -> milliseconds (for paper-style reporting).
inline double to_ms(rt::Ticks t) { return static_cast<double>(t) * kMsPerTick; }

struct GenOptions {
  int num_tasks = 30;
  int num_chains = 8;        ///< task chains (consecutive tasks linked by
                             ///< messages); remaining tasks are independent
  int num_ecus = 8;
  double utilization = 0.40;  ///< mean per-ECU utilization target
  double slow_factor = 1.5;   ///< WCET multiplier on the "slow" ECU half
  double forbidden_rate = 0.1;  ///< chance a task is barred from an ECU
  int separated_pairs = 2;    ///< redundant pairs that must not co-reside
  std::uint64_t seed = 0xA11C;
};

/// Random chain-structured task set on a single token ring over all ECUs.
alloc::Problem generate(const GenOptions& options);

/// Table 2 series: fixed task set shape on a ring of `num_ecus` ECUs.
/// The task set itself does not change with the ECU count (same seed), so
/// growth in encoding size is attributable to the architecture alone.
alloc::Problem scaling_system(int num_ecus, int num_tasks = 30,
                              std::uint64_t seed = 0xA11C);

}  // namespace optalloc::workload

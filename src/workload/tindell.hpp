#pragma once
// The benchmark instances of the paper's evaluation (Section 6):
//
//   * tindell_system(): a synthetic reconstruction of the Tindell, Burns &
//     Wellings [5] case study — 43 tasks in 12 chains on 8 ECUs with a
//     token ring, placement restrictions, redundant (separated) pairs and
//     memory budgets. The original task table was never published; this
//     instance reproduces its published *shape* (counts, constraint kinds,
//     ms-scale timing) so the same comparisons can be run. (Substitution
//     documented in DESIGN.md.)
//   * tindell_prefix(n): the first n tasks (Table 3's scaling series).
//   * with_can_bus(): medium swapped to CAN (Table 1, second row).
//   * architecture_a/b/c(): the hierarchical architectures of Fig. 2
//     (Table 4), built over the same task set.

#include "alloc/problem.hpp"

namespace optalloc::workload {

/// The 43-task / 8-ECU token-ring system (1 tick = 0.25 ms).
alloc::Problem tindell_system();

/// First `num_tasks` tasks of tindell_system(); messages and separation
/// constraints referencing dropped tasks are removed.
alloc::Problem tindell_prefix(int num_tasks);

/// Replace medium `medium` by a CAN bus (~100 kbit/s at the 0.25 ms tick).
alloc::Problem with_can_bus(alloc::Problem p, int medium = 0);

/// Fig. 2 Architecture A: two rings of 4 compute ECUs each, joined by a
/// dedicated gateway ECU that hosts no tasks. `num_tasks` selects a
/// prefix of the task set (43 = the full system, as in the paper; smaller
/// prefixes keep default benchmark runs tractable).
alloc::Problem architecture_a(int num_tasks = 43);

/// Fig. 2 Architecture B: two leaf rings under a top-level ring, joined by
/// two dedicated gateway ECUs; two extra compute ECUs on the top ring.
alloc::Problem architecture_b(int num_tasks = 43);

/// Fig. 2 Architecture C: the flat 8-ECU ring plus an upper ring gatewayed
/// through ECU 0 (which may host tasks); the ECUs added on the upper ring
/// are communication peripherals that host no application tasks, so the
/// optimum reproduces the flat system's placement (the paper's result).
/// With `can_upper`, the upper medium is a CAN bus (the in-text variant).
alloc::Problem architecture_c(bool can_upper = false, int num_tasks = 43);

}  // namespace optalloc::workload

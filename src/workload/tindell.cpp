#include "workload/tindell.hpp"

#include <algorithm>
#include <stdexcept>

#include "workload/generator.hpp"

namespace optalloc::workload {

using rt::Ticks;

alloc::Problem tindell_system() {
  GenOptions options;
  options.num_tasks = 43;
  options.num_chains = 12;
  options.num_ecus = 8;
  options.utilization = 0.40;
  options.separated_pairs = 3;
  options.forbidden_rate = 0.0;  // restrictions added structurally below
  options.seed = 0x7E11;
  alloc::Problem p = generate(options);

  // Placement restrictions: chain heads act as sensor tasks pinned near
  // their peripheral; every third chain tail is an actuator pinned to the
  // "slow" half. Restrictions are implemented by forbidding the other
  // ECUs, like the paper's pi_i sets.
  int chain_head = 0;
  int chain = 0;
  for (int i = 0; i + 1 < 43; ++i) {
    const bool starts_chain = (i == chain_head);
    if (starts_chain) {
      const int pin = chain % 8;
      for (int e = 0; e < 8; ++e) {
        if (e != pin) {
          p.tasks.tasks[static_cast<std::size_t>(i)]
              .wcet[static_cast<std::size_t>(e)] = rt::kForbidden;
        }
      }
      // Find the end of this chain by following its messages.
      int t = i;
      while (!p.tasks.tasks[static_cast<std::size_t>(t)].messages.empty()) {
        t = p.tasks.tasks[static_cast<std::size_t>(t)]
                .messages.front()
                .target_task;
      }
      if (chain % 3 == 0 && t != i) {
        const int pin_tail = 4 + (chain % 4);
        for (int e = 0; e < 8; ++e) {
          if (e != pin_tail) {
            p.tasks.tasks[static_cast<std::size_t>(t)]
                .wcet[static_cast<std::size_t>(e)] = rt::kForbidden;
          }
        }
      }
      chain_head = t + 1;
      ++chain;
    }
  }
  return p;
}

alloc::Problem tindell_prefix(int num_tasks) {
  alloc::Problem p = tindell_system();
  if (num_tasks < 1 || num_tasks > static_cast<int>(p.tasks.tasks.size())) {
    throw std::invalid_argument("tindell_prefix: bad task count");
  }
  p.tasks.tasks.resize(static_cast<std::size_t>(num_tasks));
  for (rt::Task& t : p.tasks.tasks) {
    std::erase_if(t.messages, [&](const rt::Message& m) {
      return m.target_task >= num_tasks;
    });
    std::erase_if(t.separated_from,
                  [&](int j) { return j >= num_tasks; });
  }
  return p;
}

alloc::Problem with_can_bus(alloc::Problem p, int medium) {
  rt::Medium& m = p.arch.media[static_cast<std::size_t>(medium)];
  m.type = rt::MediumType::kCan;
  m.name += "_can";
  // ~100 kbit/s at a 0.25 ms tick: 25 bits per tick. A max frame (135
  // bits) then takes 6 ticks = 1.5 ms, matching mid-90s automotive CAN.
  m.can_bit_ticks = 1;
  m.can_bits_per_tick = 25;
  return p;
}

namespace {

/// Extend every task's WCET vector to `num_ecus`, filling new entries
/// with `value` (kForbidden or a slowdown of the task's cheapest WCET).
void extend_wcets(alloc::Problem& p, int num_ecus, double slow_factor) {
  for (rt::Task& t : p.tasks.tasks) {
    Ticks cheapest = rt::kForbidden;
    for (const Ticks c : t.wcet) {
      if (c != rt::kForbidden && (cheapest == rt::kForbidden || c < cheapest)) {
        cheapest = c;
      }
    }
    while (static_cast<int>(t.wcet.size()) < num_ecus) {
      if (slow_factor <= 0.0 || cheapest == rt::kForbidden) {
        t.wcet.push_back(rt::kForbidden);
      } else {
        t.wcet.push_back(static_cast<Ticks>(
            static_cast<double>(cheapest) * slow_factor));
      }
    }
  }
}

rt::Medium ring_like(const rt::Medium& proto, std::string name,
                     std::vector<int> ecus) {
  rt::Medium m = proto;
  m.name = std::move(name);
  m.ecus = std::move(ecus);
  return m;
}

}  // namespace

alloc::Problem architecture_a(int num_tasks) {
  alloc::Problem p = tindell_prefix(num_tasks);
  const rt::Medium proto = p.arch.media[0];
  p.arch.num_ecus = 9;  // ECU 8 is the gateway
  extend_wcets(p, 9, 0.0);
  p.arch.media = {ring_like(proto, "ringA", {0, 1, 2, 3, 8}),
                  ring_like(proto, "ringB", {4, 5, 6, 7, 8})};
  p.arch.media[0].gateway_cost = 5;
  p.arch.media[1].gateway_cost = 5;
  p.arch.gateway_only.assign(9, 0);
  p.arch.gateway_only[8] = 1;
  p.arch.ecu_memory.resize(9, 0);
  return p;
}

alloc::Problem architecture_b(int num_tasks) {
  alloc::Problem p = tindell_prefix(num_tasks);
  const rt::Medium proto = p.arch.media[0];
  p.arch.num_ecus = 12;  // 8, 9 gateways; 10, 11 extra compute ECUs
  extend_wcets(p, 10, 0.0);   // gateways host nothing
  extend_wcets(p, 12, 2.0);   // top-ring compute ECUs are slow
  p.arch.media = {ring_like(proto, "low1", {0, 1, 2, 3, 8}),
                  ring_like(proto, "low2", {4, 5, 6, 7, 9}),
                  ring_like(proto, "top", {8, 9, 10, 11})};
  for (auto& m : p.arch.media) m.gateway_cost = 5;
  p.arch.gateway_only.assign(12, 0);
  p.arch.gateway_only[8] = 1;
  p.arch.gateway_only[9] = 1;
  p.arch.ecu_memory.resize(12, 0);
  return p;
}

alloc::Problem architecture_c(bool can_upper, int num_tasks) {
  alloc::Problem p = tindell_prefix(num_tasks);
  const rt::Medium proto = p.arch.media[0];
  p.arch.num_ecus = 10;  // ECUs 8, 9: peripherals that host no tasks
  extend_wcets(p, 10, 0.0);
  rt::Medium upper = ring_like(proto, "upper", {0, 8, 9});
  // Stations on the upper ring may surrender their slots entirely, so an
  // unused upper ring contributes 0 to the sum of TRTs.
  upper.slot_min = 0;
  p.arch.media = {ring_like(proto, "low", {0, 1, 2, 3, 4, 5, 6, 7}), upper};
  for (auto& m : p.arch.media) m.gateway_cost = 5;
  if (can_upper) {
    p.arch.media[1].type = rt::MediumType::kCan;
    p.arch.media[1].name = "upper_can";
    p.arch.media[1].can_bit_ticks = 1;
    p.arch.media[1].can_bits_per_tick = 25;
  }
  p.arch.ecu_memory.resize(10, 0);
  return p;
}

}  // namespace optalloc::workload

#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

namespace optalloc::workload {

using rt::Ticks;

namespace {

/// UUniFast (Bini & Buttazzo): unbiased utilization split of `total`
/// across n tasks.
std::vector<double> uunifast(Rng& rng, int n, double total) {
  std::vector<double> u(static_cast<std::size_t>(n));
  double sum = total;
  for (int i = 0; i < n - 1; ++i) {
    const double next =
        sum * std::pow(rng.uniform01(), 1.0 / static_cast<double>(n - i - 1));
    u[static_cast<std::size_t>(i)] = sum - next;
    sum = next;
  }
  u[static_cast<std::size_t>(n - 1)] = sum;
  return u;
}

constexpr Ticks kPeriods[] = {20, 50, 100, 200, 500};

}  // namespace

alloc::Problem generate(const GenOptions& options) {
  Rng rng(options.seed);
  alloc::Problem p;
  p.arch.num_ecus = options.num_ecus;

  rt::Medium ring;
  ring.name = "ring0";
  ring.type = rt::MediumType::kTokenRing;
  for (int e = 0; e < options.num_ecus; ++e) ring.ecus.push_back(e);
  ring.ring_byte_ticks = 1;
  ring.slot_min = 1;
  ring.slot_max = 12;
  p.arch.media = {ring};

  // Total utilization spread over the tasks; WCETs follow from periods.
  const double total_util =
      options.utilization * static_cast<double>(options.num_ecus);
  const auto utils = uunifast(rng, options.num_tasks, total_util);

  for (int i = 0; i < options.num_tasks; ++i) {
    rt::Task t;
    t.name = "t" + std::to_string(i);
    t.period = kPeriods[rng.index(std::size(kPeriods))];
    // Clamp per-task utilization to keep any single task schedulable.
    const double u =
        std::clamp(utils[static_cast<std::size_t>(i)], 0.01, 0.6);
    const Ticks base_wcet =
        std::max<Ticks>(1, static_cast<Ticks>(u * static_cast<double>(t.period)));
    // Per-ECU draws come from a task-local stream so the task set is
    // identical across different ECU counts (Table 2 fixes the task set
    // and only grows the architecture).
    Rng ecu_rng(options.seed ^
                (0x9E3779B9ULL * static_cast<std::uint64_t>(i + 1)));
    for (int e = 0; e < options.num_ecus; ++e) {
      // Heterogeneous hardware: the upper half of the ECUs is slower.
      const bool slow = e >= options.num_ecus / 2;
      Ticks c = slow ? static_cast<Ticks>(
                           std::ceil(static_cast<double>(base_wcet) *
                                     options.slow_factor))
                     : base_wcet;
      if (ecu_rng.chance(options.forbidden_rate)) c = rt::kForbidden;
      t.wcet.push_back(c);
    }
    // Never forbid everywhere.
    bool any = false;
    for (const Ticks c : t.wcet) any |= (c != rt::kForbidden);
    if (!any) t.wcet[ecu_rng.index(t.wcet.size())] = base_wcet;
    t.deadline = t.period;
    t.memory = rng.uniform(1, 8);
    p.tasks.tasks.push_back(std::move(t));
  }

  // Task chains: consecutive indices linked by messages. Only tasks with
  // comfortable periods carry messages so ring rounds fit the deadlines.
  int chain_start = 0;
  for (int c = 0; c < options.num_chains && chain_start + 1 < options.num_tasks;
       ++c) {
    const int len = static_cast<int>(
        rng.uniform(2, std::min<std::int64_t>(
                           4, options.num_tasks - chain_start)));
    for (int k = 0; k + 1 < len; ++k) {
      const int from = chain_start + k;
      const int to = chain_start + k + 1;
      rt::Message m;
      m.target_task = to;
      m.size_bytes = rng.uniform(1, 6);
      // End-to-end deadline: half the sender's period, but always at
      // least ~2.5 minimal TDMA rounds so bus delivery stays possible on
      // large rings (the architecture-scaling series grows the ring).
      const Ticks min_rounds =
          static_cast<Ticks>(options.num_ecus) * ring.slot_min;
      m.deadline = std::max<Ticks>(
          {Ticks{40}, 5 * min_rounds / 2,
           p.tasks.tasks[static_cast<std::size_t>(from)].period / 2});
      p.tasks.tasks[static_cast<std::size_t>(from)].messages.push_back(m);
    }
    chain_start += len;
  }

  // Redundant pairs (separation constraints) among chain-free tasks.
  int placed_pairs = 0;
  for (int i = options.num_tasks - 1;
       i >= 1 && placed_pairs < options.separated_pairs; i -= 2) {
    p.tasks.tasks[static_cast<std::size_t>(i)].separated_from = {i - 1};
    p.tasks.tasks[static_cast<std::size_t>(i - 1)].separated_from = {i};
    ++placed_pairs;
  }

  // Memory budgets on the fast half (loose: 2x fair share).
  p.arch.ecu_memory.assign(static_cast<std::size_t>(options.num_ecus), 0);
  std::int64_t total_mem = 0;
  for (const rt::Task& t : p.tasks.tasks) total_mem += t.memory;
  for (int e = 0; e < options.num_ecus / 2; ++e) {
    p.arch.ecu_memory[static_cast<std::size_t>(e)] =
        2 * total_mem / options.num_ecus + 4;
  }
  return p;
}

alloc::Problem scaling_system(int num_ecus, int num_tasks,
                              std::uint64_t seed) {
  GenOptions options;
  options.num_tasks = num_tasks;
  options.num_ecus = num_ecus;
  options.num_chains = std::max(2, num_tasks / 5);
  // Keep total demand constant relative to 8 ECUs so bigger architectures
  // get easier, as in the paper's Table 2 (the task set is fixed there).
  options.utilization = 0.40 * 8.0 / static_cast<double>(num_ecus);
  options.seed = seed;
  options.forbidden_rate = 0.05;
  return generate(options);
}

}  // namespace optalloc::workload

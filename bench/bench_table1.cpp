// Table 1 reproduction: the Tindell-style 43-task system on 8 ECUs.
//   Row 1: token ring, minimize TRT; compare SAT optimum vs simulated
//          annealing (paper: SAT 8.55 ms beats SA's 8.7 ms; 48 min,
//          175k vars, 995k lits).
//   Row 2: same system on CAN, minimize U_CAN (paper: 0.371; 361 min,
//          298k vars, 1627k lits).
// We reproduce the *shape*: SAT <= SA on the ring; the CAN model is
// markedly larger/slower than the ring model; absolute numbers differ
// (synthetic instance, 2026 hardware, from-scratch solver).

#include "bench_common.hpp"
#include "workload/tindell.hpp"

using namespace optalloc;

int main() {
  bench::print_header(
      "Table 1 — Tindell-style 43-task system, 8 ECUs",
      "[5]: TRT=8.55ms, 48min, 175k vars, 995k lits; "
      "[5]+CAN: U_CAN=0.371, 361min, 298k vars, 1627k lits");

  std::printf("%-12s %-22s %-14s %-10s %-9s %-9s %s\n", "experiment",
              "result", "SA baseline", "time", "vars", "lits", "verified");
  bench::JsonReport json("table1");

  {
    const alloc::Problem p = workload::tindell_system();
    const auto out =
        bench::run_experiment(p, alloc::Objective::ring_trt(0), 200.0);
    json.add("tindell-ring-trt", out);
    std::printf("%-12s %-22s %-14s %-10s %-9lld %-9llu %s\n", "[5] TRT",
                bench::result_cell(out.sat).c_str(),
                out.sa.feasible ? bench::ms_string(out.sa.cost).c_str()
                                : "infeasible",
                Stopwatch::pretty_seconds(out.sat.stats.seconds).c_str(),
                static_cast<long long>(out.sat.stats.boolean_vars),
                static_cast<unsigned long long>(
                    out.sat.stats.boolean_literals),
                out.verified ? "yes" : "NO");
    if (out.sat.has_allocation) {
      std::printf("  optimal TRT %s vs simulated annealing %s\n",
                  bench::ms_string(out.sat.cost).c_str(),
                  out.sa.feasible ? bench::ms_string(out.sa.cost).c_str()
                                  : "-");
    }
  }

  {
    const alloc::Problem p = workload::with_can_bus(workload::tindell_system());
    const auto out =
        bench::run_experiment(p, alloc::Objective::can_load(0), 300.0);
    json.add("tindell-can-load", out);
    std::printf("%-12s %-22s %-14s %-10s %-9lld %-9llu %s\n", "[5] + CAN",
                bench::result_cell(out.sat).c_str(),
                out.sa.feasible
                    ? (std::string("U=") +
                       std::to_string(static_cast<double>(out.sa.cost) /
                                      1000.0))
                          .substr(0, 9)
                          .c_str()
                    : "infeasible",
                Stopwatch::pretty_seconds(out.sat.stats.seconds).c_str(),
                static_cast<long long>(out.sat.stats.boolean_vars),
                static_cast<unsigned long long>(
                    out.sat.stats.boolean_literals),
                out.verified ? "yes" : "NO");
    if (out.sat.has_allocation) {
      std::printf("  U_CAN = %.3f (scaled-integer objective /1000)\n",
                  static_cast<double>(out.sat.cost) / 1000.0);
    }
  }
  return 0;
}

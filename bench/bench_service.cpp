// Closed-loop load generator for the allocation service: an in-process
// alloc_serve (Server on a Unix-domain socket) hammered by N concurrent
// clients, each submitting a stream of small generated instances with
// wait=true and measuring end-to-end latency at the socket.
//
// The instance mix cycles through a handful of distinct systems *plus
// task-order permutations of them*, so a healthy run exercises both the
// solver path and the canonical-fingerprint cache (permuted duplicates
// must hit). The run fails (exit 1) if any request is dropped or answers
// a non-ok response.
//
// Environment knobs:
//   OPTALLOC_SVC_CLIENTS    concurrent closed-loop clients (default 16)
//   OPTALLOC_SVC_REQUESTS   requests per client (default 8)
//   OPTALLOC_SVC_WORKERS    scheduler worker threads (default 4)
//
// Emits BENCH_service.json: request counts, drop count, cache hit rate,
// client-side latency percentiles and throughput.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "alloc/io.hpp"
#include "obs/json.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "util/stopwatch.hpp"
#include "workload/generator.hpp"

using namespace optalloc;

namespace {

int env_int(const char* name, int dflt) {
  if (const char* env = std::getenv(name)) return std::atoi(env);
  return dflt;
}

/// Move task `from` to the end — a reordering the canonical fingerprint
/// must see through (same system, different declaration order).
alloc::Problem permute_tasks(const alloc::Problem& p) {
  alloc::Problem q = p;
  if (q.tasks.tasks.size() < 2) return q;
  std::rotate(q.tasks.tasks.begin(), q.tasks.tasks.begin() + 1,
              q.tasks.tasks.end());
  const int n = static_cast<int>(q.tasks.tasks.size());
  auto remap = [n](int t) { return (t + n - 1) % n; };
  for (rt::Task& t : q.tasks.tasks) {
    for (int& s : t.separated_from) s = remap(s);
    for (rt::Message& m : t.messages) m.target_task = remap(m.target_task);
  }
  return q;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

int main() {
  const int clients = std::max(1, env_int("OPTALLOC_SVC_CLIENTS", 16));
  const int per_client = std::max(1, env_int("OPTALLOC_SVC_REQUESTS", 8));

  // Distinct base instances plus a permuted twin of each: 2*kBases unique
  // request bodies mapping to kBases cache entries.
  constexpr int kBases = 3;
  std::vector<std::string> bodies;
  for (int b = 0; b < kBases; ++b) {
    workload::GenOptions gen;
    gen.num_tasks = 10;
    gen.num_chains = 3;
    gen.num_ecus = 4;
    gen.separated_pairs = 1;
    gen.seed = 0xBE7C0000ull + static_cast<std::uint64_t>(b);
    const alloc::Problem p = workload::generate(gen);
    std::ostringstream base, perm;
    alloc::write_problem(base, p);
    alloc::write_problem(perm, permute_tasks(p));
    bodies.push_back(base.str());
    bodies.push_back(perm.str());
  }

  svc::ServerOptions options;
  options.scheduler.workers = std::max(1, env_int("OPTALLOC_SVC_WORKERS", 4));
  options.scheduler.queue_capacity =
      static_cast<std::size_t>(clients) * static_cast<std::size_t>(per_client);
  svc::Server server(options);
  const std::string socket_path = "./bench_service.sock";
  if (!server.listen_unix(socket_path)) {
    std::fprintf(stderr, "bench_service: cannot listen on %s\n",
                 socket_path.c_str());
    return 1;
  }
  std::thread server_thread([&server] { server.run(); });

  std::atomic<int> dropped{0};
  std::atomic<int> bad{0};
  std::mutex lat_mu;
  std::vector<double> latencies_ms;

  Stopwatch wall;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      const int fd = svc::connect_unix(socket_path);
      if (fd < 0) {
        dropped.fetch_add(per_client);
        return;
      }
      std::string buffer;
      for (int r = 0; r < per_client; ++r) {
        const std::string& body =
            bodies[static_cast<std::size_t>(c + r) % bodies.size()];
        const std::string request = obs::JsonObject()
                                        .str("verb", "submit")
                                        .str("problem", body)
                                        .str("objective", "trt:0")
                                        .boolean("wait", true)
                                        .build();
        Stopwatch rtt;
        std::string response;
        if (!svc::send_line(fd, request) ||
            !svc::recv_line(fd, buffer, response)) {
          dropped.fetch_add(1);
          continue;
        }
        const double ms = rtt.seconds() * 1000.0;
        const auto doc = obs::json_parse(response);
        const obs::JsonValue* ok = doc ? doc->get("ok") : nullptr;
        if (ok == nullptr || !ok->b) {
          bad.fetch_add(1);
          continue;
        }
        std::lock_guard<std::mutex> lock(lat_mu);
        latencies_ms.push_back(ms);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double wall_s = wall.seconds();

  const svc::ServiceStats stats = server.scheduler().stats();
  server.request_stop();
  server_thread.join();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const int total = clients * per_client;
  const int answered = static_cast<int>(latencies_ms.size());
  const double hit_rate =
      stats.cache.hits + stats.cache.misses > 0
          ? static_cast<double>(stats.cache.hits) /
                static_cast<double>(stats.cache.hits + stats.cache.misses)
          : 0.0;
  const double p50 = percentile(latencies_ms, 50.0);
  const double p95 = percentile(latencies_ms, 95.0);
  const double p99 = percentile(latencies_ms, 99.0);
  const double pmax = latencies_ms.empty() ? 0.0 : latencies_ms.back();

  std::printf("clients=%d requests=%d answered=%d dropped=%d bad=%d\n",
              clients, total, answered, dropped.load(), bad.load());
  std::printf("cache: %llu hits / %llu misses (%.0f%% hit rate)\n",
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              hit_rate * 100.0);
  std::printf("latency ms: p50=%.1f p95=%.1f p99=%.1f max=%.1f\n", p50, p95,
              p99, pmax);
  std::printf("wall=%.2fs throughput=%.1f req/s\n", wall_s,
              wall_s > 0 ? answered / wall_s : 0.0);

  {
    std::ofstream out("BENCH_service.json", std::ios::trunc);
    if (out) {
      out << obs::JsonObject()
                 .str("bench", "service")
                 .num("clients", static_cast<std::int64_t>(clients))
                 .num("requests", static_cast<std::int64_t>(total))
                 .num("answered", static_cast<std::int64_t>(answered))
                 .num("dropped", static_cast<std::int64_t>(dropped.load()))
                 .num("bad", static_cast<std::int64_t>(bad.load()))
                 .num("workers",
                      static_cast<std::int64_t>(options.scheduler.workers))
                 .num("cache_hits",
                      static_cast<std::int64_t>(stats.cache.hits))
                 .num("cache_misses",
                      static_cast<std::int64_t>(stats.cache.misses))
                 .num("cache_hit_rate", hit_rate)
                 .num("p50_ms", p50)
                 .num("p95_ms", p95)
                 .num("p99_ms", p99)
                 .num("max_ms", pmax)
                 .num("wall_seconds", wall_s)
                 .num("throughput_rps", wall_s > 0 ? answered / wall_s : 0.0)
                 .build()
          << '\n';
      std::printf("wrote BENCH_service.json\n");
    } else {
      std::fprintf(stderr, "warning: cannot write BENCH_service.json\n");
    }
  }
  return dropped.load() == 0 && bad.load() == 0 && answered == total ? 0 : 1;
}

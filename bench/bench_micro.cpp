// Micro-benchmarks (google-benchmark) for the substrates: CDCL solver
// throughput on classic instances, native PB propagation, bit-blasting
// cost per arithmetic operator, response-time fixed points, path-closure
// construction, and end-to-end encoding of small allocation problems.
//
// After the google-benchmark run, a hardware-profile pass times the three
// pipeline phases (encode / solve / certify) on a Tindell prefix with the
// perf_event_open counter group (see src/obs/perfctr.hpp) and writes
// BENCH_micro.json — per phase: wall seconds plus cycles, instructions,
// cache references/misses and branch misses, rendered as JSON nulls on
// hosts where the counters are unavailable (containers, non-Linux,
// OPTALLOC_NO_PERFCTR=1).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>

#include "alloc/encoder.hpp"
#include "encode/bitblast.hpp"
#include "net/paths.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/perfctr.hpp"
#include "pb/propagator.hpp"
#include "rt/analysis.hpp"
#include "rt/verify.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"
#include "workload/tindell.hpp"

using namespace optalloc;

namespace {

void add_pigeonhole(sat::Solver& s, int pigeons, int holes) {
  std::vector<std::vector<sat::Var>> grid(
      static_cast<std::size_t>(pigeons),
      std::vector<sat::Var>(static_cast<std::size_t>(holes)));
  for (auto& row : grid) {
    for (auto& v : row) v = s.new_var();
  }
  for (int pi = 0; pi < pigeons; ++pi) {
    std::vector<sat::Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(sat::pos(grid[pi][h]));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_binary(sat::neg(grid[p1][h]), sat::neg(grid[p2][h]));
      }
    }
  }
}

void BM_SatPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    add_pigeonhole(s, holes + 1, holes);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(7)->Arg(8);

void BM_SatRandom3Sat(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const int clauses = static_cast<int>(vars * 4.1);
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(static_cast<std::uint64_t>(state.iterations()));
    sat::Solver s;
    for (int v = 0; v < vars; ++v) s.new_var();
    for (int c = 0; c < clauses; ++c) {
      std::vector<sat::Lit> clause;
      for (int k = 0; k < 3; ++k) {
        clause.push_back(sat::Lit(static_cast<sat::Var>(rng.index(vars)),
                                  rng.chance(0.5)));
      }
      s.add_clause(clause);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatRandom3Sat)->Arg(50)->Arg(100)->Arg(150);

void BM_PbCardinalityPropagation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    pb::PbPropagator pbp(s);
    std::vector<pb::Term> terms;
    for (int i = 0; i < n; ++i) terms.push_back({1, sat::pos(s.new_var())});
    pbp.add_ge(terms, n / 2);
    pbp.add_le(terms, n / 2);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_PbCardinalityPropagation)->Arg(32)->Arg(128)->Arg(512);

void BM_BitblastMultiplier(benchmark::State& state) {
  const std::int64_t hi = (std::int64_t{1} << state.range(0)) - 1;
  for (auto _ : state) {
    ir::Context ctx;
    sat::Solver s;
    encode::BitBlaster bb(ctx, s);
    const auto x = ctx.int_var("x", 0, hi);
    const auto y = ctx.int_var("y", 0, hi);
    bb.assert_true(ctx.eq(ctx.mul(x, y), ctx.constant(hi)));
    benchmark::DoNotOptimize(s.num_clauses());
  }
}
BENCHMARK(BM_BitblastMultiplier)->Arg(6)->Arg(10)->Arg(14);

void BM_ResponseTimeFixpoint(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<rt::Interferer> hp;
  for (int i = 0; i < n; ++i) {
    hp.push_back({2 + i % 5, 40 + 13 * i, i % 3});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::response_time_fp(25, hp, 100000));
  }
}
BENCHMARK(BM_ResponseTimeFixpoint)->Arg(4)->Arg(16)->Arg(64);

void BM_PathClosures(benchmark::State& state) {
  const int rings = static_cast<int>(state.range(0));
  rt::Architecture arch;
  arch.num_ecus = rings * 3 + 1;
  for (int r = 0; r < rings; ++r) {
    rt::Medium m;
    m.name = "r" + std::to_string(r);
    m.type = rt::MediumType::kTokenRing;
    // Star topology: every ring shares ECU 0... violates the one-gateway
    // rule pairwise; chain them instead.
    m.ecus = {r * 3, r * 3 + 1, r * 3 + 2, r * 3 + 3};
    arch.media.push_back(m);
  }
  for (auto _ : state) {
    net::PathClosures pc(arch);
    benchmark::DoNotOptimize(pc.routes().size());
  }
}
BENCHMARK(BM_PathClosures)->Arg(2)->Arg(4)->Arg(6);

void BM_EncodeTindellPrefix(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  const alloc::Problem p = workload::tindell_prefix(tasks);
  for (auto _ : state) {
    alloc::AllocEncoder enc(p, alloc::Objective::ring_trt(0));
    enc.build();
    benchmark::DoNotOptimize(enc.solver().num_vars());
  }
}
BENCHMARK(BM_EncodeTindellPrefix)->Arg(7)->Arg(12)->Arg(20);

void BM_VerifyTindell(benchmark::State& state) {
  const alloc::Problem p = workload::tindell_prefix(20);
  // A known-feasible allocation from the greedy heuristic path: build one
  // via verify-compatible completion (tasks on their cheapest ECUs).
  alloc::AllocEncoder enc(p, alloc::Objective::feasibility());
  enc.build();
  if (enc.solve({}, {}) != sat::LBool::kTrue) {
    state.SkipWithError("unexpected: instance infeasible");
    return;
  }
  const rt::Allocation alloc = enc.decode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::verify(p.tasks, p.arch, alloc).feasible);
  }
}
BENCHMARK(BM_VerifyTindell);

/// Per-phase hardware profile: encode (build the constraint system),
/// solve (one SOLVE call), certify (independent RT re-validation of the
/// model). Each phase row carries wall seconds + the counter deltas.
void write_perf_profile() {
  const alloc::Problem p = workload::tindell_prefix(12);
  obs::JsonArray phases;

  const auto phase_row = [&phases](const char* name, double seconds,
                                   const obs::PerfCounts& d) {
    phases.push(obs::JsonObject()
                    .str("phase", name)
                    .num("seconds", seconds)
                    .raw("counters", obs::perf_json(d))
                    .build());
  };

  alloc::AllocEncoder enc(p, alloc::Objective::sum_trt());
  {
    const auto t0 = obs::monotonic_ns();
    const obs::PerfCounts c0 = obs::perf_read();
    enc.build();
    phase_row("encode", (obs::monotonic_ns() - t0) * 1e-9,
              obs::perf_delta(obs::perf_read(), c0));
  }
  rt::Allocation model;
  {
    const auto t0 = obs::monotonic_ns();
    const obs::PerfCounts c0 = obs::perf_read();
    const sat::LBool res = enc.solve({}, {});
    phase_row("solve", (obs::monotonic_ns() - t0) * 1e-9,
              obs::perf_delta(obs::perf_read(), c0));
    if (res != sat::LBool::kTrue) {
      std::fprintf(stderr, "warning: profile instance not SAT\n");
      return;
    }
    model = enc.decode();
  }
  {
    const auto t0 = obs::monotonic_ns();
    const obs::PerfCounts c0 = obs::perf_read();
    const bool ok = rt::verify(p.tasks, p.arch, model).feasible;
    phase_row("certify", (obs::monotonic_ns() - t0) * 1e-9,
              obs::perf_delta(obs::perf_read(), c0));
    if (!ok) std::fprintf(stderr, "warning: profile model not verified\n");
  }

  const char* path = "BENCH_micro.json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path);
    return;
  }
  out << obs::JsonObject()
             .str("bench", "micro")
             .boolean("perf_available", obs::perf_available())
             .raw("phases", phases.build())
             .build()
      << '\n';
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  write_perf_profile();
  return 0;
}

// Edit-chain workload for incremental re-solve sessions: open one
// inc::Session on a generated instance, then walk a deterministic chain
// of what-if edits (deadline tightening, WCET growth, jitter, an
// infeasible over-constraint and its reversal). Every edit is solved
// twice — warm through the session (delta re-encode, retained learnt
// clauses, optimum-seeded binary search) and cold through a fresh
// alloc::optimize — and each verdict is cross-checked against an
// *untimed certified* cold solve: identical proven optima (or identical
// proven infeasibility) or the run fails. The headline number is the
// geometric-mean cold/warm speedup across the chain; the run exits 1
// below the gate, so a regression in the session machinery fails CI
// rather than drifting.
//
// Environment knobs:
//   OPTALLOC_INC_TASKS        instance size (default 12 tasks)
//   OPTALLOC_INC_ECUS         ring size (default 4 ECUs)
//   OPTALLOC_INC_MIN_SPEEDUP  geomean gate (default 5.0; 0 disables)
//
// Emits BENCH_incremental.json (bench_diff-compatible: rows keyed by
// "instance", carrying "status" and "cost" for equality checking).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "alloc/cost.hpp"
#include "alloc/optimizer.hpp"
#include "inc/patch.hpp"
#include "inc/session.hpp"
#include "obs/json.hpp"
#include "rt/model.hpp"
#include "util/stopwatch.hpp"
#include "workload/generator.hpp"

using namespace optalloc;

namespace {

int env_int(const char* name, int dflt) {
  if (const char* env = std::getenv(name)) return std::atoi(env);
  return dflt;
}

double env_double(const char* name, double dflt) {
  if (const char* env = std::getenv(name)) return std::atof(env);
  return dflt;
}

struct Step {
  std::string label;
  inc::InstancePatch patch;
  bool expect_infeasible = false;
};

inc::PatchOp op_set_deadline(const std::string& task, std::int64_t d) {
  inc::PatchOp op;
  op.kind = inc::PatchOp::Kind::kSetDeadline;
  op.task = task;
  op.value = d;
  return op;
}

inc::PatchOp op_set_wcet(const std::string& task, int ecu, std::int64_t w) {
  inc::PatchOp op;
  op.kind = inc::PatchOp::Kind::kSetWcet;
  op.task = task;
  op.ecu = ecu;
  op.value = w;
  return op;
}

inc::PatchOp op_set_jitter(const std::string& task, std::int64_t j) {
  inc::PatchOp op;
  op.kind = inc::PatchOp::Kind::kSetJitter;
  op.task = task;
  op.value = j;
  return op;
}

/// Smallest positive WCET of a task across ECUs (kForbidden excluded).
std::int64_t min_wcet(const rt::Task& t) {
  std::int64_t best = -1;
  for (const rt::Ticks w : t.wcet) {
    if (w == rt::kForbidden) continue;
    if (best < 0 || w < best) best = w;
  }
  return best;
}

/// The deterministic what-if chain, derived from the instance itself so
/// it stays valid across generator-parameter changes. One edit is
/// deliberately infeasible (deadline below the task's best WCET) and the
/// next reverts it — exercising core extraction and group re-adoption.
std::vector<Step> build_chain(const alloc::Problem& problem) {
  const auto& tasks = problem.tasks.tasks;
  const int n = static_cast<int>(tasks.size());
  auto task = [&](int i) -> const rt::Task& {
    return tasks[static_cast<std::size_t>(i * 7 % n)];
  };
  std::vector<Step> chain;

  const rt::Task& a = task(1);
  chain.push_back({"set_deadline_" + a.name,
                   {{op_set_deadline(a.name, std::max<std::int64_t>(
                                                 min_wcet(a) + 1,
                                                 a.deadline * 9 / 10))}},
                   false});

  const rt::Task& b = task(2);
  int b_ecu = 0;
  for (int e = 0; e < static_cast<int>(b.wcet.size()); ++e) {
    if (b.wcet[static_cast<std::size_t>(e)] != rt::kForbidden) {
      b_ecu = e;
      break;
    }
  }
  const std::int64_t b_w = b.wcet[static_cast<std::size_t>(b_ecu)];
  chain.push_back(
      {"grow_wcet_" + b.name,
       {{op_set_wcet(b.name, b_ecu, b_w + std::max<std::int64_t>(1, b_w / 8))}},
       false});

  const rt::Task& c = task(3);
  chain.push_back({"add_jitter_" + c.name,
                   {{op_set_jitter(c.name, c.release_jitter + 2)}},
                   false});

  // Over-constrain: no ECU can finish `d` inside its deadline.
  const rt::Task& d = task(4);
  const std::int64_t impossible = std::max<std::int64_t>(1, min_wcet(d) - 1);
  chain.push_back(
      {"impossible_deadline_" + d.name,
       {{op_set_deadline(d.name, impossible)}},
       true});
  chain.push_back({"revert_deadline_" + d.name,
                   {{op_set_deadline(d.name, d.deadline)}},
                   false});

  const rt::Task& e = task(5);
  chain.push_back({"tighten_deadline_" + e.name,
                   {{op_set_deadline(e.name, std::max<std::int64_t>(
                                                 min_wcet(e) + 1,
                                                 e.deadline * 4 / 5))}},
                   false});

  // Batch edit: two tasks touched in one revise.
  const rt::Task& f = task(6);
  const rt::Task& g = task(8);
  inc::InstancePatch batch;
  batch.ops.push_back(op_set_jitter(f.name, f.release_jitter + 1));
  batch.ops.push_back(op_set_deadline(
      g.name,
      std::max<std::int64_t>(min_wcet(g) + 1, g.deadline * 19 / 20)));
  chain.push_back({"batch_" + f.name + "_" + g.name, batch, false});

  return chain;
}

}  // namespace

int main() {
  workload::GenOptions gen;
  gen.num_tasks = env_int("OPTALLOC_INC_TASKS", 12);
  gen.num_ecus = env_int("OPTALLOC_INC_ECUS", 4);
  gen.num_chains = std::max(2, gen.num_tasks / 4);
  const double min_speedup = env_double("OPTALLOC_INC_MIN_SPEEDUP", 5.0);

  alloc::Problem base = workload::generate(gen);
  const alloc::Objective objective = alloc::Objective::sum_trt();

  // The instance mutates step by step; cold solves see the same history.
  alloc::Problem current = base;
  inc::Session session(base, objective);

  // Opening solve (cold inside the session) is reported but not part of
  // the speedup geomean — there is nothing warm about it yet.
  const inc::SessionResult opened = session.solve();
  if (opened.status != inc::SessionResult::Status::kOptimal) {
    std::fprintf(stderr, "bench_incremental: base instance not optimal: %s\n",
                 inc::SessionResult::status_name(opened.status));
    return 1;
  }
  std::printf("base: cost=%lld  %.3fs  (%d sat calls, %lld clauses)\n",
              static_cast<long long>(opened.cost), opened.seconds,
              opened.sat_calls, static_cast<long long>(opened.clauses_added));

  const std::vector<Step> chain = build_chain(base);
  obs::JsonArray rows;
  double log_speedup_sum = 0.0;
  int speedup_n = 0;
  bool ok = true;

  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Step& step = chain[i];
    char tag[32];
    std::snprintf(tag, sizeof(tag), "edit%02zu_", i + 1);
    const std::string name = tag + step.label;

    // Warm: through the session.
    Stopwatch warm_sw;
    const inc::SessionResult warm = session.revise(step.patch);
    const double warm_seconds = warm_sw.seconds();
    if (warm.status == inc::SessionResult::Status::kError) {
      std::fprintf(stderr, "bench_incremental: %s: patch error: %s\n",
                   name.c_str(), warm.error.c_str());
      return 1;
    }

    // Cold: fresh optimizer on the same post-edit instance.
    if (const auto err = inc::apply_patch(step.patch, current)) {
      std::fprintf(stderr, "bench_incremental: %s: cold apply: %s\n",
                   name.c_str(), err->c_str());
      return 1;
    }
    Stopwatch cold_sw;
    const alloc::OptimizeResult cold =
        alloc::optimize(current, objective, {});
    const double cold_seconds = cold_sw.seconds();

    // Referee: untimed certified cold solve. Optima must agree with BOTH
    // timed solves, and the certificate must check out.
    alloc::OptimizeOptions certified_opts;
    certified_opts.certify = true;
    const alloc::OptimizeResult certified =
        alloc::optimize(current, objective, certified_opts);

    const bool warm_infeasible =
        warm.status == inc::SessionResult::Status::kInfeasible;
    if (warm_infeasible != step.expect_infeasible) {
      std::fprintf(stderr, "bench_incremental: %s: expected %s, session says %s\n",
                   name.c_str(),
                   step.expect_infeasible ? "infeasible" : "feasible",
                   inc::SessionResult::status_name(warm.status));
      ok = false;
    }
    if (warm_infeasible) {
      if (cold.status != alloc::OptimizeResult::Status::kInfeasible ||
          certified.status != alloc::OptimizeResult::Status::kInfeasible) {
        std::fprintf(stderr,
                     "bench_incremental: %s: session infeasible but cold "
                     "disagrees\n",
                     name.c_str());
        ok = false;
      }
      if (warm.core.empty() || !session.core_is_conflicting(warm.core)) {
        std::fprintf(stderr,
                     "bench_incremental: %s: missing or non-conflicting "
                     "unsat core\n",
                     name.c_str());
        ok = false;
      }
    } else {
      if (!warm.proven_optimal ||
          cold.status != alloc::OptimizeResult::Status::kOptimal ||
          certified.status != alloc::OptimizeResult::Status::kOptimal ||
          !certified.certified || warm.cost != cold.cost ||
          warm.cost != certified.cost) {
        std::fprintf(stderr,
                     "bench_incremental: %s: optima disagree (warm %lld, "
                     "cold %lld, certified %lld%s)\n",
                     name.c_str(), static_cast<long long>(warm.cost),
                     static_cast<long long>(cold.cost),
                     static_cast<long long>(certified.cost),
                     certified.certified ? "" : ", certificate FAILED");
        ok = false;
      }
      const auto value =
          alloc::evaluate_allocation(current, objective, warm.allocation);
      if (!value || *value != warm.cost) {
        std::fprintf(stderr,
                     "bench_incremental: %s: session allocation does not "
                     "verify at its cost\n",
                     name.c_str());
        ok = false;
      }
    }

    const double speedup =
        warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;
    if (speedup > 0.0) {
      log_speedup_sum += std::log(speedup);
      ++speedup_n;
    }
    std::string core_note;
    for (const std::string& c : warm.core) {
      core_note += core_note.empty() ? "  core={" : ", ";
      core_note += c;
    }
    if (!core_note.empty()) core_note += "}";
    std::printf(
        "%-28s %-10s cost=%-6lld warm %8.4fs  cold %8.4fs  %6.1fx  "
        "(reused %zu/%zu groups)%s\n",
        name.c_str(), inc::SessionResult::status_name(warm.status),
        static_cast<long long>(warm.cost), warm_seconds, cold_seconds,
        speedup, warm.groups_unchanged,
        warm.groups_unchanged + static_cast<std::size_t>(warm.groups_added),
        core_note.c_str());

    obs::JsonObject row;
    row.str("instance", name)
        .str("status", inc::SessionResult::status_name(warm.status))
        .num("cost", warm.cost)
        .num("warm_seconds", warm_seconds)
        .num("cold_seconds", cold_seconds)
        .num("speedup", speedup)
        .num("sat_calls", static_cast<std::int64_t>(warm.sat_calls))
        .num("clauses_added", warm.clauses_added)
        .num("groups_unchanged",
             static_cast<std::int64_t>(warm.groups_unchanged))
        .num("core_size", static_cast<std::int64_t>(warm.core.size()));
    rows.push(row.build());
  }

  const double geomean =
      speedup_n > 0 ? std::exp(log_speedup_sum / speedup_n) : 0.0;
  std::printf("geomean speedup: %.1fx over %d edits (gate %.1fx)\n", geomean,
              speedup_n, min_speedup);

  std::ofstream out("BENCH_incremental.json");
  out << obs::JsonObject()
             .str("bench", "incremental")
             .num("tasks", static_cast<std::int64_t>(gen.num_tasks))
             .num("ecus", static_cast<std::int64_t>(gen.num_ecus))
             .num("base_cost", opened.cost)
             .num("base_seconds", opened.seconds)
             .num("geomean_speedup", geomean)
             .boolean("verified", ok)
             .raw("instances", rows.build())
             .build()
      << "\n";

  if (!ok) return 1;
  if (min_speedup > 0.0 && geomean < min_speedup) {
    std::fprintf(stderr,
                 "bench_incremental: geomean %.2fx below the %.2fx gate\n",
                 geomean, min_speedup);
    return 1;
  }
  return 0;
}

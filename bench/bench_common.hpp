#pragma once
// Shared harness for the table benchmarks: runs one allocation experiment
// (simulated-annealing baseline + SAT optimizer with warm start), verifies
// the result, and prints paper-style rows (result, runtime, #vars, #lits).
//
// Environment knobs:
//   OPTALLOC_BENCH_SECONDS  per-experiment SAT time budget (default 120;
//                           rows that exhaust it report the best-so-far
//                           anytime result and the remaining bound gap)
//   OPTALLOC_SA_ITERS       annealing iterations (default 8000)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "alloc/optimizer.hpp"
#include "heur/annealing.hpp"
#include "obs/json.hpp"
#include "obs/perfctr.hpp"
#include "rt/verify.hpp"
#include "util/stopwatch.hpp"
#include "workload/generator.hpp"

namespace optalloc::bench {

inline double budget_seconds() {
  if (const char* env = std::getenv("OPTALLOC_BENCH_SECONDS")) {
    return std::atof(env);
  }
  return 120.0;
}

inline int sa_iterations() {
  if (const char* env = std::getenv("OPTALLOC_SA_ITERS")) {
    return std::atoi(env);
  }
  return 8000;
}

struct RunOutcome {
  heur::AnnealingResult sa;
  alloc::OptimizeResult sat;
  bool verified = false;
  double sa_seconds = 0.0;
  /// Hardware-counter consumption of the SAT search (cycles, cache
  /// misses, ...); {available:false} on perf-less hosts — rendered as
  /// JSON nulls in the report.
  obs::PerfCounts perf;
};

/// SA baseline, then SAT optimization seeded with it; verifies the SAT
/// allocation through the independent analyzer.
inline RunOutcome run_experiment(const alloc::Problem& problem,
                                 alloc::Objective objective,
                                 double time_limit = 0.0,
                                 alloc::OptimizeOptions base_options = {}) {
  RunOutcome out;
  Stopwatch sw;
  heur::AnnealingOptions sa_opts;
  sa_opts.iterations = sa_iterations();
  out.sa = heur::anneal(problem, objective, sa_opts);
  out.sa_seconds = sw.seconds();

  alloc::OptimizeOptions opts = base_options;
  opts.time_limit_s = time_limit > 0.0 ? time_limit : budget_seconds();
  // Ablation hook for tools/bench_diff: OPTALLOC_NO_INPROCESS=1 reruns
  // any table bench with clause-DB inprocessing disabled, so the on/off
  // artifacts can be diffed (see EXPERIMENTS.md).
  if (const char* env = std::getenv("OPTALLOC_NO_INPROCESS")) {
    if (env[0] != '\0' && env[0] != '0') opts.inprocess = false;
  }
  if (out.sa.feasible) {
    opts.initial_upper = out.sa.cost;
    opts.warm_start = out.sa.allocation;
  }
  const obs::PerfCounts perf_before = obs::perf_read();
  out.sat = alloc::optimize(problem, objective, opts);
  out.perf = obs::perf_delta(obs::perf_read(), perf_before);
  if (out.sat.has_allocation) {
    out.verified = rt::verify(problem.tasks, problem.arch,
                              out.sat.allocation)
                       .feasible;
  }
  return out;
}

/// "13 ticks (3.25 ms)" — tick values with their ms equivalent.
inline std::string ms_string(std::int64_t ticks) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%lld ticks (%.2f ms)",
                static_cast<long long>(ticks), workload::to_ms(ticks));
  return buf;
}

/// Status cell: "13 (optimal)" or "14 [>=12] (budget)".
inline std::string result_cell(const alloc::OptimizeResult& res) {
  char buf[96];
  if (res.status == alloc::OptimizeResult::Status::kOptimal) {
    std::snprintf(buf, sizeof buf, "%lld (optimal)",
                  static_cast<long long>(res.cost));
  } else if (res.status == alloc::OptimizeResult::Status::kInfeasible) {
    std::snprintf(buf, sizeof buf, "infeasible");
  } else if (res.has_allocation) {
    std::snprintf(buf, sizeof buf, "%lld [>=%lld] (budget)",
                  static_cast<long long>(res.cost),
                  static_cast<long long>(res.lower_bound));
  } else {
    std::snprintf(buf, sizeof buf, "timeout");
  }
  return buf;
}

/// Machine-readable run summary: collects one JSON object per experiment
/// and writes `BENCH_<name>.json` on destruction, so every bench binary
/// leaves a parseable artifact next to its human-readable table. The
/// "vars"/"lits" fields are the paper tables' "Var."/"Lit." columns;
/// "seconds"/"conflicts" correspond to the runtime and search-effort
/// numbers (see README "Observability").
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;
  ~JsonReport() { write(); }

  /// Row from the SA + SAT harness.
  void add(const std::string& instance, const RunOutcome& out) {
    obs::JsonObject row;
    row.str("instance", instance);
    fill(row, out.sat);
    row.boolean("verified", out.verified)
        .boolean("sa_feasible", out.sa.feasible)
        .num("sa_seconds", out.sa_seconds)
        .raw("perf_counters", obs::perf_json(out.perf));
    if (out.sa.feasible) row.num("sa_cost", out.sa.cost);
    rows_.push(row.build());
  }

  /// Row from a bare optimizer result (ablation variants, portfolio).
  void add_result(const std::string& instance,
                  const alloc::OptimizeResult& res) {
    obs::JsonObject row;
    row.str("instance", instance);
    fill(row, res);
    rows_.push(row.build());
  }

  void write() {
    if (written_) return;
    written_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    out << obs::JsonObject()
               .str("bench", name_)
               .num("budget_seconds", budget_seconds())
               .num("sa_iterations",
                    static_cast<std::int64_t>(sa_iterations()))
               .raw("instances", rows_.build())
               .build()
        << '\n';
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  static void fill(obs::JsonObject& row, const alloc::OptimizeResult& res) {
    row.str("status", res.status_string());
    if (res.has_allocation) row.num("cost", res.cost);
    row.num("lower_bound", res.lower_bound)
        .num("seconds", res.stats.seconds)
        .num("sat_calls", static_cast<std::int64_t>(res.stats.sat_calls))
        .num("sat_calls_sat",
             static_cast<std::int64_t>(res.stats.sat_calls_sat))
        .num("sat_calls_unsat",
             static_cast<std::int64_t>(res.stats.sat_calls_unsat))
        .num("encode_seconds", res.stats.encode_seconds)
        .num("solve_seconds", res.stats.solve_seconds)
        .num("vars", res.stats.boolean_vars)
        .num("lits", static_cast<std::int64_t>(res.stats.boolean_literals))
        .num("conflicts", static_cast<std::int64_t>(res.stats.conflicts))
        .num("pb_constraints",
             static_cast<std::int64_t>(res.stats.pb_constraints));
  }

  std::string name_;
  obs::JsonArray rows_;
  bool written_ = false;
};

inline void print_header(const char* title, const char* paper_note) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title);
  std::printf("paper reference: %s\n", paper_note);
  std::printf("budget: %.0f s per experiment (OPTALLOC_BENCH_SECONDS)\n",
              budget_seconds());
  std::printf("==================================================================\n");
}

}  // namespace optalloc::bench

#pragma once
// Shared harness for the table benchmarks: runs one allocation experiment
// (simulated-annealing baseline + SAT optimizer with warm start), verifies
// the result, and prints paper-style rows (result, runtime, #vars, #lits).
//
// Environment knobs:
//   OPTALLOC_BENCH_SECONDS  per-experiment SAT time budget (default 120;
//                           rows that exhaust it report the best-so-far
//                           anytime result and the remaining bound gap)
//   OPTALLOC_SA_ITERS       annealing iterations (default 8000)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "alloc/optimizer.hpp"
#include "heur/annealing.hpp"
#include "rt/verify.hpp"
#include "util/stopwatch.hpp"
#include "workload/generator.hpp"

namespace optalloc::bench {

inline double budget_seconds() {
  if (const char* env = std::getenv("OPTALLOC_BENCH_SECONDS")) {
    return std::atof(env);
  }
  return 120.0;
}

inline int sa_iterations() {
  if (const char* env = std::getenv("OPTALLOC_SA_ITERS")) {
    return std::atoi(env);
  }
  return 8000;
}

struct RunOutcome {
  heur::AnnealingResult sa;
  alloc::OptimizeResult sat;
  bool verified = false;
  double sa_seconds = 0.0;
};

/// SA baseline, then SAT optimization seeded with it; verifies the SAT
/// allocation through the independent analyzer.
inline RunOutcome run_experiment(const alloc::Problem& problem,
                                 alloc::Objective objective,
                                 double time_limit = 0.0,
                                 alloc::OptimizeOptions base_options = {}) {
  RunOutcome out;
  Stopwatch sw;
  heur::AnnealingOptions sa_opts;
  sa_opts.iterations = sa_iterations();
  out.sa = heur::anneal(problem, objective, sa_opts);
  out.sa_seconds = sw.seconds();

  alloc::OptimizeOptions opts = base_options;
  opts.time_limit_s = time_limit > 0.0 ? time_limit : budget_seconds();
  if (out.sa.feasible) {
    opts.initial_upper = out.sa.cost;
    opts.warm_start = out.sa.allocation;
  }
  out.sat = alloc::optimize(problem, objective, opts);
  if (out.sat.has_allocation) {
    out.verified = rt::verify(problem.tasks, problem.arch,
                              out.sat.allocation)
                       .feasible;
  }
  return out;
}

/// "13 ticks (3.25 ms)" — tick values with their ms equivalent.
inline std::string ms_string(std::int64_t ticks) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%lld ticks (%.2f ms)",
                static_cast<long long>(ticks), workload::to_ms(ticks));
  return buf;
}

/// Status cell: "13 (optimal)" or "14 [>=12] (budget)".
inline std::string result_cell(const alloc::OptimizeResult& res) {
  char buf[96];
  if (res.status == alloc::OptimizeResult::Status::kOptimal) {
    std::snprintf(buf, sizeof buf, "%lld (optimal)",
                  static_cast<long long>(res.cost));
  } else if (res.status == alloc::OptimizeResult::Status::kInfeasible) {
    std::snprintf(buf, sizeof buf, "infeasible");
  } else if (res.has_allocation) {
    std::snprintf(buf, sizeof buf, "%lld [>=%lld] (budget)",
                  static_cast<long long>(res.cost),
                  static_cast<long long>(res.lower_bound));
  } else {
    std::snprintf(buf, sizeof buf, "timeout");
  }
  return buf;
}

inline void print_header(const char* title, const char* paper_note) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title);
  std::printf("paper reference: %s\n", paper_note);
  std::printf("budget: %.0f s per experiment (OPTALLOC_BENCH_SECONDS)\n",
              budget_seconds());
  std::printf("==================================================================\n");
}

}  // namespace optalloc::bench

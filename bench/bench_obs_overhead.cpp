// Observability overhead bench: the same optimization workload under the
// telemetry configurations —
//   off        tracing off, histograms off, flight recorder off (the
//              hot-path baseline: every producer site pays one relaxed
//              atomic load)
//   flight     flight recorder on, everything else off — the production
//              default (the recorder is always-on); the gate below keys
//              on this config
//   resource   resource accounting on, everything else off (arena /
//              learnts gauges synced on GC and solve exit)
//   hist       tracing off, histograms on (bucket index + two relaxed
//              atomic adds per observation)
//   trace      tracing on (to a file), histograms off
//   all        everything on (trace + histograms + flight + resources)
// — and writes BENCH_obs_overhead.json with per-config wall times and
// the overhead ratio of each config against "off". Acceptance gates:
// tracing-off overhead must stay within noise (a few percent) of the
// untelemetered baseline, because production services run that way; the
// flight recorder (on, trace off) must cost <= 5% — it is the always-on
// post-mortem path and may not tax the solver; and resource accounting
// (also always-on in the service) gets the same 5% budget.
//
// Environment knobs:
//   OPTALLOC_OBS_BENCH_REPEATS  optimize() runs per config (default 5)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "alloc/optimizer.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"
#include "workload/generator.hpp"

using namespace optalloc;

namespace {

int repeats() {
  if (const char* env = std::getenv("OPTALLOC_OBS_BENCH_REPEATS")) {
    return std::max(1, std::atoi(env));
  }
  return 5;
}

struct Config {
  const char* name;
  bool trace;
  bool histograms;
  bool flight;
  bool resource;
};

/// One timed pass: `reps` full optimize() runs over the same instance.
double run_config(const alloc::Problem& problem, const Config& cfg,
                  int reps, const std::string& trace_path) {
  obs::set_histograms(cfg.histograms);
  obs::set_flight(cfg.flight);
  obs::set_resources(cfg.resource);
  if (cfg.trace) {
    if (!obs::trace_open(trace_path)) {
      std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
      std::exit(1);
    }
  }
  Stopwatch sw;
  for (int i = 0; i < reps; ++i) {
    alloc::OptimizeOptions opts;
    opts.time_limit_s = 60.0;
    const auto res =
        alloc::optimize(problem, alloc::Objective::sum_trt(), opts);
    if (res.status != alloc::OptimizeResult::Status::kOptimal) {
      std::fprintf(stderr, "bench instance did not reach the optimum\n");
      std::exit(1);
    }
  }
  const double secs = sw.seconds();
  if (cfg.trace) obs::trace_close();
  obs::set_histograms(true);
  obs::set_flight(true);
  obs::set_resources(true);
  return secs;
}

}  // namespace

int main() {
  workload::GenOptions gen;
  gen.num_tasks = 20;
  gen.num_ecus = 5;
  const alloc::Problem problem = workload::generate(gen);
  const int reps = repeats();

  const Config configs[] = {
      {"off", false, false, false, false},
      {"flight", false, false, true, false},
      {"resource", false, false, false, true},
      {"hist", false, true, false, false},
      {"trace", true, false, false, false},
      {"all", true, true, true, true},
  };

  std::printf("observability overhead: %d optimize() runs per config\n",
              reps);
  std::printf("%-12s %10s %10s\n", "config", "seconds", "vs off");

  // Warm-up pass (allocator, branch predictors, metric registrations) so
  // the first measured config isn't penalized.
  run_config(problem, configs[0], 1, "");

  obs::JsonArray rows;
  double baseline = 0.0;
  double flight_ratio = 1.0;
  double resource_ratio = 1.0;
  for (const Config& cfg : configs) {
    const double secs =
        run_config(problem, cfg, reps, "BENCH_obs_overhead_trace.jsonl");
    if (baseline == 0.0) baseline = secs;
    const double ratio = baseline > 0.0 ? secs / baseline : 1.0;
    if (std::string(cfg.name) == "flight") flight_ratio = ratio;
    if (std::string(cfg.name) == "resource") resource_ratio = ratio;
    std::printf("%-12s %10.3f %9.3fx\n", cfg.name, secs, ratio);
    rows.push(obs::JsonObject()
                  .str("config", cfg.name)
                  .boolean("trace", cfg.trace)
                  .boolean("histograms", cfg.histograms)
                  .boolean("flight", cfg.flight)
                  .boolean("resource", cfg.resource)
                  .num("seconds", secs)
                  .num("seconds_per_run", secs / reps)
                  .num("overhead_ratio", ratio)
                  .build());
  }
  // The flight recorder and resource accounting are always-on in
  // production; each gets a 5% budget.
  const bool flight_ok = flight_ratio <= 1.05;
  std::printf("flight-recorder overhead: %.1f%% (budget 5%%) -> %s\n",
              (flight_ratio - 1.0) * 100.0, flight_ok ? "OK" : "OVER");
  const bool resource_ok = resource_ratio <= 1.05;
  std::printf("resource-accounting overhead: %.1f%% (budget 5%%) -> %s\n",
              (resource_ratio - 1.0) * 100.0, resource_ok ? "OK" : "OVER");

  const std::string path = "BENCH_obs_overhead.json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return 1;
  }
  out << obs::JsonObject()
             .str("bench", "obs_overhead")
             .num("repeats", static_cast<std::int64_t>(reps))
             .num("tasks", static_cast<std::int64_t>(gen.num_tasks))
             .num("ecus", static_cast<std::int64_t>(gen.num_ecus))
             .num("flight_overhead_ratio", flight_ratio)
             .boolean("flight_overhead_ok", flight_ok)
             .num("resource_overhead_ratio", resource_ratio)
             .boolean("resource_overhead_ok", resource_ok)
             .raw("configs", rows.build())
             .build()
      << '\n';
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

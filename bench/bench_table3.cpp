// Table 3 reproduction: complexity vs task-set size. Prefixes of the
// Tindell-style system (7..43 tasks) on the 8-ECU ring. Paper: 23 s at 7
// tasks to 48 min at 43; vars 5k -> 174k, lits 22k -> 995k — an almost
// exponential blow-up with the task count (the number of preemption
// formulae is quadratic in tasks, and each grows the search space).

#include "bench_common.hpp"
#include "workload/tindell.hpp"

using namespace optalloc;

int main() {
  bench::print_header(
      "Table 3 — complexity vs task-set size (8 ECUs, token ring)",
      "7..43 tasks: 23s..48min, 5k..174k vars, 22k..995k lits");

  std::printf("%-6s %-22s %-14s %-10s %-9s %-9s %s\n", "tasks", "result",
              "SA baseline", "time", "vars", "lits", "verified");
  bench::JsonReport json("table3");
  for (const int tasks : {7, 12, 20, 30, 43}) {
    const alloc::Problem p = workload::tindell_prefix(tasks);
    const auto out = bench::run_experiment(p, alloc::Objective::ring_trt(0),
                                           tasks >= 43 ? 200.0 : 0.0);
    json.add("tasks-" + std::to_string(tasks), out);
    std::printf("%-6d %-22s %-14s %-10s %-9lld %-9llu %s\n", tasks,
                bench::result_cell(out.sat).c_str(),
                out.sa.feasible
                    ? std::to_string(out.sa.cost).c_str()
                    : "infeasible",
                Stopwatch::pretty_seconds(out.sat.stats.seconds).c_str(),
                static_cast<long long>(out.sat.stats.boolean_vars),
                static_cast<unsigned long long>(
                    out.sat.stats.boolean_literals),
                out.verified ? "yes" : "NO");
    std::fflush(stdout);
  }
  return 0;
}

// Cooperative-portfolio scaling benchmark: Table-4-class hierarchical
// instances solved by 1/2/4/8 diversified CDCL workers, with the sharing
// layer (clause exchange + bound broadcasting, see src/par) switched on
// and off. "off" is the classic independent portfolio race — the same
// worker configurations with no communication — so each row pair isolates
// what cooperation buys at that scale. Every run must end on the same
// optimum (the sharing layer changes how fast the search converges, never
// where); the bench cross-checks that and reports per-row medians over
// OPTALLOC_PAR_REPEATS repetitions.
//
// Environment knobs (on top of bench_common's):
//   OPTALLOC_PAR_TASKS    Tindell-prefix size per instance (default 22)
//   OPTALLOC_PAR_REPEATS  repetitions per row, median reported (default 3)
//
// Emits BENCH_parallel.json: one row per (instance, workers, sharing)
// with wall seconds (median + all), SOLVE calls, exchanged-clause and
// bound-update counts, plus per-instance speedup summaries.

#include <algorithm>
#include <string>
#include <vector>

#include "alloc/portfolio.hpp"
#include "bench_common.hpp"
#include "workload/tindell.hpp"

using namespace optalloc;

namespace {

int par_tasks() {
  if (const char* env = std::getenv("OPTALLOC_PAR_TASKS")) {
    return std::atoi(env);
  }
  return 22;
}

int par_repeats() {
  if (const char* env = std::getenv("OPTALLOC_PAR_REPEATS")) {
    return std::atoi(env);
  }
  return 3;
}

struct Row {
  int workers = 0;
  bool sharing = false;
  double median_s = 0.0;
  std::vector<double> all_s;
  alloc::PortfolioResult last;
  bool consistent = true;  ///< every repeat reached the same definitive cost
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0.0 : n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

Row run_row(const alloc::Problem& problem, alloc::Objective objective,
            const alloc::OptimizeOptions& base, int workers, bool sharing,
            int repeats, std::int64_t* expected_cost, bool* expected_known) {
  Row row;
  row.workers = workers;
  row.sharing = sharing;
  for (int r = 0; r < repeats; ++r) {
    alloc::PortfolioOptions popts;
    popts.threads = workers;
    popts.base_config = base;
    popts.time_limit_s = bench::budget_seconds();
    popts.share_clauses = sharing;
    popts.share_bounds = sharing;
    Stopwatch sw;
    alloc::PortfolioResult res =
        alloc::optimize_portfolio(problem, objective, popts);
    row.all_s.push_back(sw.seconds());
    if (res.best.status == alloc::OptimizeResult::Status::kOptimal) {
      if (!*expected_known) {
        *expected_known = true;
        *expected_cost = res.best.cost;
      } else if (res.best.cost != *expected_cost) {
        row.consistent = false;
      }
    }
    row.last = std::move(res);
  }
  row.median_s = median(row.all_s);
  return row;
}

}  // namespace

int main() {
  const int tasks = par_tasks();
  const int repeats = par_repeats();
  char title[160];
  std::snprintf(title, sizeof title,
                "Parallel scaling — cooperative portfolio (clause + bound "
                "sharing) vs independent race, %d tasks, %d repeats",
                tasks, repeats);
  bench::print_header(title,
                      "no paper counterpart; the paper's runs are "
                      "single-threaded (Section 7)");

  struct Instance {
    const char* name;
    alloc::Problem problem;
  };
  std::vector<Instance> instances;
  instances.push_back({"A", workload::architecture_a(tasks)});
  instances.push_back({"C", workload::architecture_c(false, tasks)});
  const alloc::Objective objective = alloc::Objective::sum_trt();
  const std::vector<int> worker_counts = {1, 2, 4, 8};

  obs::JsonArray json_instances;
  std::vector<double> race_speedups;
  bool all_consistent = true;
  for (Instance& inst : instances) {
    // One annealing seed per instance, shared by every row, so worker
    // counts are compared from an identical starting interval.
    heur::AnnealingOptions sa_opts;
    sa_opts.iterations = bench::sa_iterations();
    const auto sa = heur::anneal(inst.problem, objective, sa_opts);
    alloc::OptimizeOptions base;
    if (sa.feasible) {
      base.initial_upper = sa.cost;
      base.warm_start = sa.allocation;
    }

    std::printf("\ninstance %s (%d tasks)\n", inst.name, tasks);
    std::printf("%-8s %-9s %-10s %-22s %-9s %-9s %s\n", "workers", "sharing",
                "median", "result", "exported", "imported", "bounds");
    std::int64_t expected_cost = 0;
    bool expected_known = false;
    std::vector<Row> rows;
    for (const int w : worker_counts) {
      for (const bool sharing : {false, true}) {
        if (w == 1 && sharing) continue;  // nobody to share with
        Row row = run_row(inst.problem, objective, base, w, sharing, repeats,
                          &expected_cost, &expected_known);
        all_consistent = all_consistent && row.consistent;
        std::printf("%-8d %-9s %-10s %-22s %-9llu %-9llu %llu/%llu\n", w,
                    sharing ? "on" : "off",
                    Stopwatch::pretty_seconds(row.median_s).c_str(),
                    bench::result_cell(row.last.best).c_str(),
                    static_cast<unsigned long long>(
                        row.last.sharing.clauses_exported),
                    static_cast<unsigned long long>(
                        row.last.sharing.clauses_imported),
                    static_cast<unsigned long long>(
                        row.last.sharing.bounds_published),
                    static_cast<unsigned long long>(
                        row.last.sharing.bounds_adopted));
        std::fflush(stdout);
        rows.push_back(std::move(row));
      }
    }

    auto median_of = [&](int w, bool sharing) -> double {
      for (const Row& r : rows) {
        if (r.workers == w && r.sharing == sharing) return r.median_s;
      }
      return 0.0;
    };
    const double base_1 = median_of(1, false);
    const double race_4 = median_of(4, false);
    const double coop_4 = median_of(4, true);
    const double speedup_vs_serial = coop_4 > 0.0 ? base_1 / coop_4 : 0.0;
    const double speedup_vs_race = coop_4 > 0.0 ? race_4 / coop_4 : 0.0;
    std::printf("  4-worker cooperative speedup: %.2fx vs 1 worker, "
                "%.2fx vs independent 4-worker race\n",
                speedup_vs_serial, speedup_vs_race);
    race_speedups.push_back(speedup_vs_race);

    obs::JsonArray json_rows;
    for (const Row& r : rows) {
      obs::JsonObject jr;
      jr.num("workers", static_cast<std::int64_t>(r.workers))
          .boolean("sharing", r.sharing)
          .num("median_seconds", r.median_s);
      obs::JsonArray times;
      for (const double s : r.all_s) times.push(obs::json_number(s));
      jr.raw("seconds", times.build())
          .str("status", r.last.best.status_string());
      if (r.last.best.has_allocation) jr.num("cost", r.last.best.cost);
      jr.num("sat_calls", [&] {
          std::int64_t calls = 0;
          for (const auto& s : r.last.per_config_stats) calls += s.sat_calls;
          return calls;
        }())
          .num("clauses_exported",
               static_cast<std::int64_t>(r.last.sharing.clauses_exported))
          .num("clauses_imported",
               static_cast<std::int64_t>(r.last.sharing.clauses_imported))
          .num("bounds_published",
               static_cast<std::int64_t>(r.last.sharing.bounds_published))
          .num("bounds_adopted",
               static_cast<std::int64_t>(r.last.sharing.bounds_adopted))
          .num("pool_dropped",
               static_cast<std::int64_t>(r.last.sharing.pool_dropped))
          .boolean("consistent", r.consistent);
      json_rows.push(jr.build());
    }
    obs::JsonObject ji;
    ji.str("instance", inst.name)
        .raw("rows", json_rows.build())
        .num("speedup_4w_vs_serial", speedup_vs_serial)
        .num("speedup_4w_vs_race", speedup_vs_race);
    if (expected_known) ji.num("optimum", expected_cost);
    json_instances.push(ji.build());
  }

  const double median_race_speedup = median(race_speedups);
  std::printf("\nmedian 4-worker speedup, sharing on vs independent race: "
              "%.2fx\n",
              median_race_speedup);
  std::printf("optima consistent across all runs: %s\n",
              all_consistent ? "yes" : "NO");
  {
    std::ofstream out("BENCH_parallel.json", std::ios::trunc);
    if (out) {
      out << obs::JsonObject()
                 .str("bench", "parallel")
                 .num("tasks", static_cast<std::int64_t>(tasks))
                 .num("repeats", static_cast<std::int64_t>(repeats))
                 .num("budget_seconds", bench::budget_seconds())
                 .num("median_speedup_4w_vs_race", median_race_speedup)
                 .boolean("consistent", all_consistent)
                 .raw("instances", json_instances.build())
                 .build()
          << '\n';
      std::printf("wrote BENCH_parallel.json\n");
    } else {
      std::fprintf(stderr, "warning: cannot write BENCH_parallel.json\n");
    }
  }
  return all_consistent ? 0 : 1;
}

// Table 4 reproduction: the hierarchical architectures of Fig. 2 under
// the sum-of-TRTs objective, plus the in-text CAN-upper-bus variant of
// architecture C. Paper results (43 tasks, hours of runtime each):
// A = 10.77 ms, B = 16.32 ms, C = 8.55 ms — identical to the flat
// optimum, since C's gateway placement lets all tasks stay on the lower
// ring. Expected shape: C == flat < A < B — more fragmentation means
// more gateway crossings and larger TRT sums.
//
// Default run uses a 24-task prefix so every row reaches the proven
// optimum in seconds (the paper burned 8-13 *hours* per row on the full
// set); set OPTALLOC_T4_TASKS=43 for the full-size instances (give them
// a large OPTALLOC_BENCH_SECONDS budget; rows then report anytime bounds
// when the budget runs out). The optimizer walks the cost down from the
// annealing seed (descending strategy) — on these large instances the
// satisfiable queries are cheap and only the final optimality proof is
// hard.

#include "bench_common.hpp"
#include "workload/tindell.hpp"

using namespace optalloc;

namespace {

int t4_tasks() {
  if (const char* env = std::getenv("OPTALLOC_T4_TASKS")) {
    return std::atoi(env);
  }
  return 24;
}

void row(bench::JsonReport& json, const char* name,
         const alloc::Problem& p, alloc::Objective obj) {
  alloc::OptimizeOptions base;
  base.strategy = alloc::SearchStrategy::kDescending;
  const auto out =
      bench::run_experiment(p, obj, bench::budget_seconds() * 2, base);
  json.add(name, out);
  std::printf("%-14s %-22s %-14s %-10s %-9lld %-9llu %s\n", name,
              bench::result_cell(out.sat).c_str(),
              out.sa.feasible ? std::to_string(out.sa.cost).c_str()
                              : "infeasible",
              optalloc::Stopwatch::pretty_seconds(out.sat.stats.seconds)
                  .c_str(),
              static_cast<long long>(out.sat.stats.boolean_vars),
              static_cast<unsigned long long>(out.sat.stats.boolean_literals),
              out.verified ? "yes" : "NO");
  if (out.sat.has_allocation) {
    std::printf("  sum of TRTs = %s\n",
                bench::ms_string(out.sat.cost).c_str());
  }
  std::fflush(stdout);
}

}  // namespace

int main() {
  const int tasks = t4_tasks();
  char title[160];
  std::snprintf(title, sizeof title,
                "Table 4 — hierarchical architectures A/B/C (Fig. 2), "
                "sum of TRTs, %d tasks",
                tasks);
  bench::print_header(
      title,
      "A: 10.77ms/490min; B: 16.32ms/740min; C: 8.55ms/790min "
      "(= flat optimum); C+CAN upper: 8.55ms on the lower bus/180min");

  std::printf("%-14s %-22s %-14s %-10s %-9s %-9s %s\n", "architecture",
              "result", "SA baseline", "time", "vars", "lits", "verified");
  bench::JsonReport json("table4");
  row(json, "flat (ref)", workload::tindell_prefix(tasks),
      alloc::Objective::ring_trt(0));
  row(json, "A", workload::architecture_a(tasks), alloc::Objective::sum_trt());
  row(json, "B", workload::architecture_b(tasks), alloc::Objective::sum_trt());
  row(json, "C", workload::architecture_c(false, tasks),
      alloc::Objective::sum_trt());
  row(json, "C + CAN up", workload::architecture_c(true, tasks),
      alloc::Objective::sum_trt());
  return 0;
}

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   1. Learned-clause reuse across binary-search steps (incremental mode)
//      vs fresh solver per SOLVE — the paper's Section 7 reports "a factor
//      of 2 and more" for the reuse.
//   2. CNF vs pseudo-Boolean (paper eq. 19) adder carries.
//   3. Redundant per-ECU utilization PB constraints on/off.
//   4. Free tie-break priorities (paper eqs. 9-10) vs fixed index order.
//   5. Heuristic warm start on/off.
//
// All variants run the same instance (a mid-size prefix of the
// Tindell-style system) to proven optimality, so runtimes are comparable.

#include "alloc/portfolio.hpp"
#include "bench_common.hpp"
#include "workload/tindell.hpp"

using namespace optalloc;

namespace {

void run_variant(bench::JsonReport& json, const char* name,
                 const alloc::Problem& p, alloc::Objective obj,
                 alloc::OptimizeOptions opts, bool warm_start) {
  if (warm_start) {
    heur::AnnealingOptions sa_opts;
    sa_opts.iterations = bench::sa_iterations();
    const auto sa = heur::anneal(p, obj, sa_opts);
    if (sa.feasible) {
      opts.initial_upper = sa.cost;
      opts.warm_start = sa.allocation;
    }
  }
  opts.time_limit_s = bench::budget_seconds();
  const auto res = alloc::optimize(p, obj, opts);
  json.add_result(name, res);
  std::printf("%-28s %-22s %-10s %-9lld %-9llu calls=%d conflicts=%llu\n",
              name, bench::result_cell(res).c_str(),
              Stopwatch::pretty_seconds(res.stats.seconds).c_str(),
              static_cast<long long>(res.stats.boolean_vars),
              static_cast<unsigned long long>(res.stats.boolean_literals),
              res.stats.sat_calls,
              static_cast<unsigned long long>(res.stats.conflicts));
  std::fflush(stdout);
}

}  // namespace

int main() {
  bench::print_header(
      "Ablations — encoder/optimizer design choices",
      "Section 7: incremental clause reuse speeds BIN_SEARCH by >= 2x");

  const alloc::Problem p = workload::tindell_prefix(20);
  const alloc::Objective obj = alloc::Objective::ring_trt(0);
  std::printf("instance: tindell_prefix(20), minimize TRT\n\n");
  std::printf("%-28s %-22s %-10s %-9s %-9s\n", "variant", "result", "time",
              "vars", "lits");
  bench::JsonReport json("ablation");

  alloc::OptimizeOptions base;
  run_variant(json, "baseline (incremental)", p, obj, base, true);

  alloc::OptimizeOptions scratch = base;
  scratch.incremental = false;
  run_variant(json, "scratch solver per SOLVE", p, obj, scratch, true);

  alloc::OptimizeOptions pb = base;
  pb.encoder.backend = encode::Backend::kPbMixed;
  run_variant(json, "PB adder carries (eq. 19)", p, obj, pb, true);

  alloc::OptimizeOptions no_util = base;
  no_util.encoder.redundant_utilization = false;
  run_variant(json, "no utilization constraints", p, obj, no_util, true);

  alloc::OptimizeOptions fixed_ties = base;
  fixed_ties.encoder.free_tie_priorities = false;
  run_variant(json, "fixed tie-break priorities", p, obj, fixed_ties, true);

  run_variant(json, "no warm start", p, obj, base, false);

  // Parallel portfolio (bisection + descending + PB racing on threads).
  {
    Stopwatch sw;
    alloc::PortfolioOptions popts;
    popts.time_limit_s = bench::budget_seconds();
    const auto res = alloc::optimize_portfolio(p, obj, popts);
    json.add_result("portfolio (3 threads)", res.best);
    std::printf("%-28s %-22s %-10s winner=%d\n", "portfolio (3 threads)",
                bench::result_cell(res.best).c_str(),
                Stopwatch::pretty_seconds(sw.seconds()).c_str(),
                res.winner);
  }
  return 0;
}

// Table 2 reproduction: complexity vs architecture size. A fixed-shape
// 30-task system mapped onto token rings of 8..64 ECUs; report runtime
// and encoding size per row. Paper: time grows from 13 min (8 ECUs) to
// 13 h (64 ECUs); vars 100k -> 206k, lits 602k -> 1304k. We reproduce the
// shape: mild growth of vars/lits with ECU count, superlinear growth of
// solve time.

#include "bench_common.hpp"
#include "workload/generator.hpp"

using namespace optalloc;

int main() {
  bench::print_header(
      "Table 2 — complexity vs number of ECUs (30 tasks, token ring)",
      "8..64 ECUs: 0:13..13:00 h, 100k..206k vars, 602k..1304k lits");

  std::printf("%-6s %-22s %-14s %-10s %-9s %-9s %s\n", "ECUs", "result",
              "SA baseline", "time", "vars", "lits", "verified");
  bench::JsonReport json("table2");
  for (const int ecus : {8, 16, 25, 32, 45, 64}) {
    const alloc::Problem p = workload::scaling_system(ecus);
    const auto out = bench::run_experiment(p, alloc::Objective::ring_trt(0));
    json.add("ecus-" + std::to_string(ecus), out);
    std::printf("%-6d %-22s %-14s %-10s %-9lld %-9llu %s\n", ecus,
                bench::result_cell(out.sat).c_str(),
                out.sa.feasible
                    ? std::to_string(out.sa.cost).c_str()
                    : "infeasible",
                Stopwatch::pretty_seconds(out.sat.stats.seconds).c_str(),
                static_cast<long long>(out.sat.stats.boolean_vars),
                static_cast<unsigned long long>(
                    out.sat.stats.boolean_literals),
                out.verified ? "yes" : "NO");
    std::fflush(stdout);
  }
  return 0;
}

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sat_solver_test[1]_include.cmake")
include("/root/repo/build/tests/sat_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/pb_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/encode_test[1]_include.cmake")
include("/root/repo/build/tests/rt_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/alloc_test[1]_include.cmake")
include("/root/repo/build/tests/heur_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/opb_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/report_dot_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/portfolio_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;27;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_hierarchical "/root/repo/build/examples/hierarchical_gateway")
set_tests_properties(example_hierarchical PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;28;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_automotive_can "/root/repo/build/examples/automotive_can")
set_tests_properties(example_automotive_can PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;29;add_test;/root/repo/tests/CMakeLists.txt;0;")

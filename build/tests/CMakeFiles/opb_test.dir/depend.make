# Empty dependencies file for opb_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/opb_test.dir/opb_test.cpp.o"
  "CMakeFiles/opb_test.dir/opb_test.cpp.o.d"
  "opb_test"
  "opb_test.pdb"
  "opb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for heur_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sat_fuzz_test.dir/sat_fuzz_test.cpp.o"
  "CMakeFiles/sat_fuzz_test.dir/sat_fuzz_test.cpp.o.d"
  "sat_fuzz_test"
  "sat_fuzz_test.pdb"
  "sat_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

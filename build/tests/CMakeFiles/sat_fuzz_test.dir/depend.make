# Empty dependencies file for sat_fuzz_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/report_dot_test.dir/report_dot_test.cpp.o"
  "CMakeFiles/report_dot_test.dir/report_dot_test.cpp.o.d"
  "report_dot_test"
  "report_dot_test.pdb"
  "report_dot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_dot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for report_dot_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pb_test.dir/pb_test.cpp.o"
  "CMakeFiles/pb_test.dir/pb_test.cpp.o.d"
  "pb_test"
  "pb_test.pdb"
  "pb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for pb_test.
# This may be replaced when dependencies are built.

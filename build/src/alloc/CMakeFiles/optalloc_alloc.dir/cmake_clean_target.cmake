file(REMOVE_RECURSE
  "liboptalloc_alloc.a"
)

# Empty compiler generated dependencies file for optalloc_alloc.
# This may be replaced when dependencies are built.

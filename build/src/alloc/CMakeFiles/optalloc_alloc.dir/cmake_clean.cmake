file(REMOVE_RECURSE
  "CMakeFiles/optalloc_alloc.dir/cost.cpp.o"
  "CMakeFiles/optalloc_alloc.dir/cost.cpp.o.d"
  "CMakeFiles/optalloc_alloc.dir/encoder.cpp.o"
  "CMakeFiles/optalloc_alloc.dir/encoder.cpp.o.d"
  "CMakeFiles/optalloc_alloc.dir/io.cpp.o"
  "CMakeFiles/optalloc_alloc.dir/io.cpp.o.d"
  "CMakeFiles/optalloc_alloc.dir/optimizer.cpp.o"
  "CMakeFiles/optalloc_alloc.dir/optimizer.cpp.o.d"
  "CMakeFiles/optalloc_alloc.dir/portfolio.cpp.o"
  "CMakeFiles/optalloc_alloc.dir/portfolio.cpp.o.d"
  "liboptalloc_alloc.a"
  "liboptalloc_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optalloc_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liboptalloc_pb.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/optalloc_pb.dir/constraint.cpp.o"
  "CMakeFiles/optalloc_pb.dir/constraint.cpp.o.d"
  "CMakeFiles/optalloc_pb.dir/encodings.cpp.o"
  "CMakeFiles/optalloc_pb.dir/encodings.cpp.o.d"
  "CMakeFiles/optalloc_pb.dir/opb.cpp.o"
  "CMakeFiles/optalloc_pb.dir/opb.cpp.o.d"
  "CMakeFiles/optalloc_pb.dir/propagator.cpp.o"
  "CMakeFiles/optalloc_pb.dir/propagator.cpp.o.d"
  "liboptalloc_pb.a"
  "liboptalloc_pb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optalloc_pb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

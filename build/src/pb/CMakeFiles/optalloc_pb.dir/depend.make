# Empty dependencies file for optalloc_pb.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liboptalloc_encode.a"
)

# Empty dependencies file for optalloc_encode.
# This may be replaced when dependencies are built.

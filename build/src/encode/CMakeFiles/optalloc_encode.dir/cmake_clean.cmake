file(REMOVE_RECURSE
  "CMakeFiles/optalloc_encode.dir/bitblast.cpp.o"
  "CMakeFiles/optalloc_encode.dir/bitblast.cpp.o.d"
  "liboptalloc_encode.a"
  "liboptalloc_encode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optalloc_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

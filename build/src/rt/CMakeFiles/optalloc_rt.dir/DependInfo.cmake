
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/analysis.cpp" "src/rt/CMakeFiles/optalloc_rt.dir/analysis.cpp.o" "gcc" "src/rt/CMakeFiles/optalloc_rt.dir/analysis.cpp.o.d"
  "/root/repo/src/rt/report.cpp" "src/rt/CMakeFiles/optalloc_rt.dir/report.cpp.o" "gcc" "src/rt/CMakeFiles/optalloc_rt.dir/report.cpp.o.d"
  "/root/repo/src/rt/sim.cpp" "src/rt/CMakeFiles/optalloc_rt.dir/sim.cpp.o" "gcc" "src/rt/CMakeFiles/optalloc_rt.dir/sim.cpp.o.d"
  "/root/repo/src/rt/verify.cpp" "src/rt/CMakeFiles/optalloc_rt.dir/verify.cpp.o" "gcc" "src/rt/CMakeFiles/optalloc_rt.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/optalloc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "liboptalloc_rt.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/optalloc_rt.dir/analysis.cpp.o"
  "CMakeFiles/optalloc_rt.dir/analysis.cpp.o.d"
  "CMakeFiles/optalloc_rt.dir/report.cpp.o"
  "CMakeFiles/optalloc_rt.dir/report.cpp.o.d"
  "CMakeFiles/optalloc_rt.dir/sim.cpp.o"
  "CMakeFiles/optalloc_rt.dir/sim.cpp.o.d"
  "CMakeFiles/optalloc_rt.dir/verify.cpp.o"
  "CMakeFiles/optalloc_rt.dir/verify.cpp.o.d"
  "liboptalloc_rt.a"
  "liboptalloc_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optalloc_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for optalloc_rt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liboptalloc_workload.a"
)

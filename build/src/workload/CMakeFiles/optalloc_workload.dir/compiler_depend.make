# Empty compiler generated dependencies file for optalloc_workload.
# This may be replaced when dependencies are built.

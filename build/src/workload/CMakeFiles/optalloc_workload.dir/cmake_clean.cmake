file(REMOVE_RECURSE
  "CMakeFiles/optalloc_workload.dir/generator.cpp.o"
  "CMakeFiles/optalloc_workload.dir/generator.cpp.o.d"
  "CMakeFiles/optalloc_workload.dir/tindell.cpp.o"
  "CMakeFiles/optalloc_workload.dir/tindell.cpp.o.d"
  "liboptalloc_workload.a"
  "liboptalloc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optalloc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

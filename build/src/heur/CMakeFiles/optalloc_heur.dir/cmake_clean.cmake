file(REMOVE_RECURSE
  "CMakeFiles/optalloc_heur.dir/annealing.cpp.o"
  "CMakeFiles/optalloc_heur.dir/annealing.cpp.o.d"
  "CMakeFiles/optalloc_heur.dir/common.cpp.o"
  "CMakeFiles/optalloc_heur.dir/common.cpp.o.d"
  "CMakeFiles/optalloc_heur.dir/exhaustive.cpp.o"
  "CMakeFiles/optalloc_heur.dir/exhaustive.cpp.o.d"
  "CMakeFiles/optalloc_heur.dir/greedy.cpp.o"
  "CMakeFiles/optalloc_heur.dir/greedy.cpp.o.d"
  "liboptalloc_heur.a"
  "liboptalloc_heur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optalloc_heur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heur/annealing.cpp" "src/heur/CMakeFiles/optalloc_heur.dir/annealing.cpp.o" "gcc" "src/heur/CMakeFiles/optalloc_heur.dir/annealing.cpp.o.d"
  "/root/repo/src/heur/common.cpp" "src/heur/CMakeFiles/optalloc_heur.dir/common.cpp.o" "gcc" "src/heur/CMakeFiles/optalloc_heur.dir/common.cpp.o.d"
  "/root/repo/src/heur/exhaustive.cpp" "src/heur/CMakeFiles/optalloc_heur.dir/exhaustive.cpp.o" "gcc" "src/heur/CMakeFiles/optalloc_heur.dir/exhaustive.cpp.o.d"
  "/root/repo/src/heur/greedy.cpp" "src/heur/CMakeFiles/optalloc_heur.dir/greedy.cpp.o" "gcc" "src/heur/CMakeFiles/optalloc_heur.dir/greedy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/alloc/CMakeFiles/optalloc_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/optalloc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/optalloc_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/encode/CMakeFiles/optalloc_encode.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/optalloc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/pb/CMakeFiles/optalloc_pb.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/optalloc_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/optalloc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for optalloc_heur.
# This may be replaced when dependencies are built.

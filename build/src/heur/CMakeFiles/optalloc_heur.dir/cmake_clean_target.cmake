file(REMOVE_RECURSE
  "liboptalloc_heur.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/optalloc_net.dir/dot.cpp.o"
  "CMakeFiles/optalloc_net.dir/dot.cpp.o.d"
  "CMakeFiles/optalloc_net.dir/paths.cpp.o"
  "CMakeFiles/optalloc_net.dir/paths.cpp.o.d"
  "liboptalloc_net.a"
  "liboptalloc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optalloc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liboptalloc_net.a"
)

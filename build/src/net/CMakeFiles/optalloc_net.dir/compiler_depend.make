# Empty compiler generated dependencies file for optalloc_net.
# This may be replaced when dependencies are built.

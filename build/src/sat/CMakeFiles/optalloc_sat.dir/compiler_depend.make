# Empty compiler generated dependencies file for optalloc_sat.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liboptalloc_sat.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/optalloc_sat.dir/dimacs.cpp.o"
  "CMakeFiles/optalloc_sat.dir/dimacs.cpp.o.d"
  "CMakeFiles/optalloc_sat.dir/solver.cpp.o"
  "CMakeFiles/optalloc_sat.dir/solver.cpp.o.d"
  "liboptalloc_sat.a"
  "liboptalloc_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optalloc_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

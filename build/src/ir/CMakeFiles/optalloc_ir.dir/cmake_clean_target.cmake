file(REMOVE_RECURSE
  "liboptalloc_ir.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/optalloc_ir.dir/expr.cpp.o"
  "CMakeFiles/optalloc_ir.dir/expr.cpp.o.d"
  "liboptalloc_ir.a"
  "liboptalloc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optalloc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for optalloc_ir.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for optalloc_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liboptalloc_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/optalloc_util.dir/log.cpp.o"
  "CMakeFiles/optalloc_util.dir/log.cpp.o.d"
  "CMakeFiles/optalloc_util.dir/rng.cpp.o"
  "CMakeFiles/optalloc_util.dir/rng.cpp.o.d"
  "CMakeFiles/optalloc_util.dir/stopwatch.cpp.o"
  "CMakeFiles/optalloc_util.dir/stopwatch.cpp.o.d"
  "liboptalloc_util.a"
  "liboptalloc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optalloc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

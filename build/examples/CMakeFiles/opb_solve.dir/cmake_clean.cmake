file(REMOVE_RECURSE
  "CMakeFiles/opb_solve.dir/opb_solve.cpp.o"
  "CMakeFiles/opb_solve.dir/opb_solve.cpp.o.d"
  "opb_solve"
  "opb_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opb_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

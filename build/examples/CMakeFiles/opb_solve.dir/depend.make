# Empty dependencies file for opb_solve.
# This may be replaced when dependencies are built.

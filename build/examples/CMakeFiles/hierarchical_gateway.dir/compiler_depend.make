# Empty compiler generated dependencies file for hierarchical_gateway.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_gateway.dir/hierarchical_gateway.cpp.o"
  "CMakeFiles/hierarchical_gateway.dir/hierarchical_gateway.cpp.o.d"
  "hierarchical_gateway"
  "hierarchical_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/dimacs_solve.dir/dimacs_solve.cpp.o"
  "CMakeFiles/dimacs_solve.dir/dimacs_solve.cpp.o.d"
  "dimacs_solve"
  "dimacs_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimacs_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/export_workload.dir/export_workload.cpp.o"
  "CMakeFiles/export_workload.dir/export_workload.cpp.o.d"
  "export_workload"
  "export_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for export_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/allocate_file.dir/allocate_file.cpp.o"
  "CMakeFiles/allocate_file.dir/allocate_file.cpp.o.d"
  "allocate_file"
  "allocate_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocate_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for allocate_file.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/automotive_can.dir/automotive_can.cpp.o"
  "CMakeFiles/automotive_can.dir/automotive_can.cpp.o.d"
  "automotive_can"
  "automotive_can.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automotive_can.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for automotive_can.
# This may be replaced when dependencies are built.
